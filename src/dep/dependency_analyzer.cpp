#include "dep/dependency_analyzer.hpp"

#include <algorithm>
#include <cstring>

#include "dep/access_group.hpp"

namespace smpss {

namespace {
/// Nested-task scoping rule: a version counts as available to `task` when it
/// is produced, has no producer (initial data), or its producer is `task`
/// itself or one of `task`'s ancestors. An ancestor is mid-execution — its
/// working copy holds exactly the value the child is meant to operate on —
/// and an ancestor→descendant edge would deadlock against taskwait(). The
/// contract this implies: data a child task touches must be covered by an
/// ancestor's footprint (or be subtree-private), and no outside task may be
/// submitted against it while the subtree is active.
bool available_to(const TaskNode* task, const Version* v) {
  const TaskNode* prod = v->producer();
  return prod == nullptr || v->is_produced() || prod == task ||
         task->has_ancestor(prod);
}

constexpr unsigned kMaxShards = 1u << 10;

unsigned round_up_pow2(unsigned n) {
  unsigned p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

DependencyAnalyzer::DependencyAnalyzer(RenamePool& pool, bool renaming_enabled,
                                       unsigned shard_count,
                                       GraphRecorder* recorder,
                                       unsigned owner_slots,
                                       unsigned cache_blocks, bool lockfree)
    : pool_(pool),
      renaming_(renaming_enabled),
      // The no-renaming ablation records per-version reader task lists for
      // WAR edges; that needs the submission lock, so it forces locked mode.
      lockfree_(lockfree && renaming_enabled),
      recorder_(recorder),
      workers_(owner_slots < 1 ? 1 : owner_slots),
      vpool_(Version::block_bytes(), alignof(std::max_align_t),
             owner_slots < 1 ? 1 : owner_slots,
             cache_blocks < 1 ? 1 : cache_blocks) {
  if (shard_count < 1) shard_count = 1;
  if (shard_count > kMaxShards) shard_count = kMaxShards;
  shard_count = round_up_pow2(shard_count);
  shard_mask_ = shard_count - 1;
  shards_ = std::make_unique<Shard[]>(shard_count);
  stripes_ = std::make_unique<CounterStripe[]>(kStripes);
}

DependencyAnalyzer::~DependencyAnalyzer() {
  // Normal shutdown goes through flush_all() after a barrier; this handles
  // abandoned runtimes without leaking versions or entries.
  for (AccessGroup* g : open_groups_) g->release();
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    for (auto& bucket : shards_[s].buckets) {
      DataEntry* p = bucket.load(std::memory_order_acquire);
      while (p != nullptr) {
        DataEntry* next = p->next.load(std::memory_order_relaxed);
        if (Version* v = p->latest.load(std::memory_order_acquire))
          v->release(pool_);
        delete p;
        p = next;
      }
    }
  }
}

DataEntry& DependencyAnalyzer::entry_for(CounterStripe& st, unsigned slot,
                                         void* addr, std::size_t bytes) {
  Shard& sh = shard_for(addr);
  std::atomic<DataEntry*>& bucket = sh.buckets[bucket_of_hash(hash_of(addr))];
  DataEntry* head = bucket.load(std::memory_order_acquire);
  for (DataEntry* p = head; p != nullptr;
       p = p->next.load(std::memory_order_acquire)) {
    if (p->user_ptr == addr) return *p;
  }
  // Miss: build the entry with its initial version — the program's own
  // storage, already "produced" — and CAS-prepend it. Chains are
  // prepend-only until flush (which requires quiescence), so the walks above
  // and below never race with reclamation.
  auto* e = new DataEntry;
  e->user_ptr = addr;
  e->bytes.store(bytes, std::memory_order_relaxed);
  Version* v0 = Version::create(vpool_, slot, e, addr, bytes,
                                /*renamed=*/false, /*producer=*/nullptr);
  e->latest.store(v0, std::memory_order_release);
  DataEntry* checked = head;  // everything from here down is already scanned
  while (true) {
    e->next.store(head, std::memory_order_relaxed);
    if (bucket.compare_exchange_weak(head, e, std::memory_order_release,
                                     std::memory_order_acquire)) {
      st.tracked_objects.fetch_add(1, std::memory_order_relaxed);
      return *e;
    }
    // Lost the insert race: scan only the newly prepended prefix for a
    // duplicate of our address; the loser destroys its speculative entry.
    for (DataEntry* p = head; p != checked;
         p = p->next.load(std::memory_order_acquire)) {
      if (p->user_ptr == addr) {
        v0->release(pool_);
        delete e;
        return *p;
      }
    }
    checked = head;
  }
}

void DependencyAnalyzer::add_edge(CounterStripe& st, TaskNode* pred,
                                  TaskNode* succ, EdgeKind kind) {
  SMPSS_ASSERT(pred != succ);
  // Release-side fast path: a predecessor whose completion hint is already
  // visible can never accept a new successor — the hint is the successor
  // stack's closed sentinel, so a true hint means add_successor would
  // refuse. Skipping it here keeps the retired producer's stack word
  // untouched (no RMW on a cold cache line) for the common re-read of
  // long-finished data.
  if (pred->finished_hint()) return;
  if (!pred->add_successor(succ)) return;  // predecessor already completed
  switch (kind) {
    case EdgeKind::True:
      st.raw_edges.fetch_add(1, std::memory_order_relaxed);
      break;
    case EdgeKind::Anti:
      st.war_edges.fetch_add(1, std::memory_order_relaxed);
      break;
    case EdgeKind::Output:
      st.waw_edges.fetch_add(1, std::memory_order_relaxed);
      break;
    case EdgeKind::Member:
      st.commute_edges.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (recorder_) recorder_->record_edge(pred->seq, succ->seq, kind);
  // Per-stream accounting: edges are charged to the *successor* (the task
  // whose submission discovered the dependence) — that is the stream whose
  // traffic created the analyzer work.
  if (succ->account)
    succ->account->edges.fetch_add(1, std::memory_order_relaxed);
}

Version* DependencyAnalyzer::pin_latest(CounterStripe& st, TaskNode* task,
                                        DataEntry& e) {
  while (true) {
    Version* v = e.latest.load(std::memory_order_acquire);
    // Register first (count + ref), then validate the head is unchanged.
    // The seq_cst increment inside register_reader pairs with the writer's
    // seq_cst publication CAS and readers_pending probe (Dekker): either our
    // validation sees the writer's new head and we retry, or the writer's
    // probe sees our pending count. If the version died and the block was
    // recycled in between, the abort makes the excursion net-zero (see
    // dep/version.hpp).
    v->register_reader(task, /*record_task=*/false);
    if (e.latest.load(std::memory_order_seq_cst) == v) return v;
    v->abort_reader_registration(pool_);
    st.cas_retries.fetch_add(1, std::memory_order_relaxed);
  }
}

void* DependencyAnalyzer::process(TaskNode* task, const AccessDesc& access) {
  SMPSS_ASSERT(!access.has_region);  // region accesses go to RegionAnalyzer
  const unsigned slot = task->submit_slot;
  CounterStripe& st = stripe_for(slot);
  st.accesses.fetch_add(1, std::memory_order_relaxed);
  if (task->account)
    task->account->accesses.fetch_add(1, std::memory_order_relaxed);
  DataEntry& e = entry_for(st, slot, access.addr, access.bytes);
  switch (access.dir) {
    case Dir::In:
      return process_read(st, task, e, access.bytes);
    case Dir::Out:
      if (lockfree_)
        return process_write_lockfree(st, slot, task, e, access.bytes,
                                      /*also_reads=*/false);
      return process_write(st, slot, task, e, access.bytes,
                           /*also_reads=*/false);
    case Dir::InOut:
      if (lockfree_)
        return process_write_lockfree(st, slot, task, e, access.bytes,
                                      /*also_reads=*/true);
      return process_write(st, slot, task, e, access.bytes,
                           /*also_reads=*/true);
    case Dir::Commutative:
    case Dir::Concurrent:
      return process_commuting(st, slot, task, e, access);
  }
  return nullptr;  // unreachable
}

void* DependencyAnalyzer::process_read(CounterStripe& st, TaskNode* task,
                                       DataEntry& e, std::size_t bytes) {
  Version* v;
  if (lockfree_) {
    // The speculative pin IS the reader registration once validated.
    v = pin_latest(st, task, e);
  } else {
    v = e.latest.load(std::memory_order_acquire);
    // Reader task recording feeds WAR edges, which only the no-renaming
    // ablation emits; skip the vector churn (and per-reader task refs) when
    // renaming absorbs those hazards.
    v->register_reader(task, /*record_task=*/!renaming_);
  }
  // A read is a non-matching access for any open commuting group at the
  // head: seal it, so no later member can slip in behind this reader. The
  // ordering itself needs nothing special — the group version's producer is
  // its close node, so the ordinary RAW edge below orders this reader after
  // the entire group. (Safe to inspect: the pin/registration above keeps v
  // alive, and sealing races are idempotent.)
  if (AccessGroup* g = v->group()) seal_group(st, g);
  // A freshly CAS-published version may still be storage-unresolved while
  // its writer decides between reuse and rename; bytes()/renamed() are only
  // stable after the wait.
  void* s = v->storage_wait();
  SMPSS_CHECK(!v->renamed() || bytes <= v->bytes(),
              "task declares a larger input size than the renamed version "
              "holds — inconsistent parameter sizes on one datum");
  if (!available_to(task, v)) {
    add_edge(st, v->producer(), task, EdgeKind::True);
  }
  task->reads.push_back(v);
  if (s == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  return s;
}

void* DependencyAnalyzer::process_write(CounterStripe& st, unsigned slot,
                                        TaskNode* task, DataEntry& e,
                                        std::size_t bytes, bool also_reads,
                                        AccessGroup* group) {
  Version* v = e.latest.load(std::memory_order_acquire);

  // A plain write never commutes with an open group at the head: seal it.
  // The hazard probe below sees the group version unproduced (its close node
  // retires only after every member), which forces the rename/edge that
  // orders this writer after the whole group.
  if (AccessGroup* pg = v->group()) seal_group(st, pg);

  // Merged-extent invariant: e.bytes is the largest extent ever written and
  // every version covers all of it, so copy-back of `latest` alone restores
  // the full datum. A write smaller than the current extent therefore
  // *inherits* the predecessor's tail bytes instead of truncating them; a
  // write larger than it grows the extent.
  const std::size_t old_ext = v->bytes();
  fetch_max(e.bytes, bytes);
  const std::size_t ext = e.bytes.load(std::memory_order_relaxed);

  if (also_reads && !available_to(task, v)) {
    add_edge(st, v->producer(), task, EdgeKind::True);  // RAW on the old value
  }

  void* storage = nullptr;
  bool renamed = false;
  SubmitterAccount* acct = nullptr;

  if (renaming_) {
    // Renaming configuration: never block on WAR/WAW — either reuse the old
    // version's bytes in place when nothing else will touch them, or move
    // the new version to fresh aligned storage. An old version produced by
    // an ancestor counts as produced (see available_to): the child writes
    // inside the ancestor's access, so reusing its bytes is the coherent
    // choice, not a hazard.
    const bool others_reading = v->readers_pending() > 0;
    const bool old_unproduced = !available_to(task, v);
    // A renamed buffer's capacity is the extent it was allocated with; a
    // growing write cannot reuse it in place (user storage can always grow —
    // the program owns at least the declared bytes at that address).
    const bool too_small = v->renamed() && ext > old_ext;
    const bool hazard = (also_reads ? others_reading
                                    : (others_reading || old_unproduced)) ||
                        too_small;
    if (!hazard) {
      // The RAW on the reused value is ordered by the pending-count edge
      // alone; with raw-pred tracking on, also register it as a read so the
      // scheduling policy's submit hook sees the producer (the reader token
      // only extends the superseded version's lifetime to this completion).
      if (track_raw_preds_ && also_reads && !available_to(task, v)) {
        v->register_reader(task, /*record_task=*/false);
        task->reads.push_back(v);
      }
      storage = v->storage();
      renamed = v->renamed();
      // In-place reuse moves buffer ownership — and with it the stream
      // charge: the credit must go to whichever account paid for the bytes.
      acct = v->account();
      v->disown_storage();  // ownership moves to the new version
      st.in_place_reuses.fetch_add(1, std::memory_order_relaxed);
      // In-place merge is free: tail bytes beyond `bytes` (if any) are
      // already sitting in this storage.
    } else {
      acct = task->account;
      storage = pool_.allocate(ext, acct);
      renamed = true;
      // Bytes the new version must inherit from the predecessor: everything
      // for an inout (the body starts from the old value), the tail beyond
      // the declared write for a shrinking out.
      const std::size_t keep_lo = also_reads ? 0 : bytes;
      if (keep_lo < old_ext) {
        if (!also_reads && !available_to(task, v)) {
          // The inherited tail is a true dependence on the old producer even
          // though the body itself never reads it.
          add_edge(st, v->producer(), task, EdgeKind::True);
        }
        // Register as reader (keeps the old version's storage alive until
        // this task completes) and schedule the byte copy.
        v->register_reader(task, /*record_task=*/false);
        task->reads.push_back(v);
        if (v->storage() == e.user_ptr) {
          e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
          task->user_pending_slots.push_back(&e.user_storage_pending);
        }
        task->copy_ins.push_back(
            CopyIn{static_cast<const char*>(v->storage()) + keep_lo,
                   static_cast<char*>(storage) + keep_lo, old_ext - keep_lo});
        st.copy_ins.fetch_add(1, std::memory_order_relaxed);
        st.copy_in_bytes.fetch_add(old_ext - keep_lo,
                                   std::memory_order_relaxed);
      }
      if (also_reads && ext > old_ext) {
        // Growing inout: bytes [old_ext, ext) were never written by any
        // task, so the body's initial value for them is the program's own
        // storage. Reading it at task start needs the same quiescence
        // accounting as any other user-storage access.
        e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
        task->user_pending_slots.push_back(&e.user_storage_pending);
        task->copy_ins.push_back(
            CopyIn{static_cast<const char*>(e.user_ptr) + old_ext,
                   static_cast<char*>(storage) + old_ext, ext - old_ext});
        st.copy_ins.fetch_add(1, std::memory_order_relaxed);
        st.copy_in_bytes.fetch_add(ext - old_ext, std::memory_order_relaxed);
      }
    }
  } else {
    // No-renaming ablation: everything stays in the user's storage and the
    // hazards the paper eliminates become explicit graph edges. Ancestor
    // accesses are exempt for the same scoping reason as above. The merge
    // invariant is trivial here — all writes land in user storage.
    if (!available_to(task, v)) {
      add_edge(st, v->producer(), task, EdgeKind::Output);
    }
    for (TaskNode* r : v->reader_tasks()) {
      if (r != task && !r->finished_hint() && !task->has_ancestor(r)) {
        add_edge(st, r, task, EdgeKind::Anti);
      }
    }
    // Same raw-pred visibility as the renaming reuse path above.
    if (track_raw_preds_ && also_reads && !available_to(task, v)) {
      v->register_reader(task, /*record_task=*/false);
      task->reads.push_back(v);
    }
    storage = v->storage();
    renamed = false;
    v->disown_storage();
  }

  auto* v2 = Version::create(vpool_, slot, &e, storage, ext, renamed, task,
                             acct);
  if (group) {
    // Opening a commuting group: the new version carries the group (one ref,
    // released by ~Version), and the group pins the superseded version so
    // member wiring can keep taking edges from its producer/readers.
    group->bytes = ext;
    v->add_ref();
    group->prev = v;
    group->add_ref();
    v2->set_group(group);
  }
  e.latest.store(v2, std::memory_order_release);
  v->release(pool_);  // drop the superseded version's latest-token
  task->produces.push_back(v2);
  if (storage == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  return storage;
}

void* DependencyAnalyzer::process_write_lockfree(CounterStripe& st,
                                                 unsigned slot, TaskNode* task,
                                                 DataEntry& e,
                                                 std::size_t bytes,
                                                 bool also_reads,
                                                 AccessGroup* group) {
  SMPSS_ASSERT(renaming_);
  // Publish first, decide later: the new version is CAS-swung onto the chain
  // head with its storage still unresolved. Success transfers the superseded
  // version's latest-token to us — from that point v cannot die under us and
  // no later writer can touch it (writers of one datum serialize on this
  // CAS). Crucially, v is NOT read at all before the CAS: a lost race means
  // the pointer may refer to a recycled block, and only the transferred
  // token makes its fields trustworthy.
  Version* v2 = Version::create(vpool_, slot, &e, Version::unresolved_storage(),
                                /*bytes=*/0, /*renamed=*/false, task);
  if (group) {
    // Opening a commuting group: attach it before publication so any access
    // that observes the new head already sees the group pointer (joiners
    // then spin on group->ready for the wiring below to finish).
    group->add_ref();
    v2->set_group(group);
  }
  Version* v = e.latest.load(std::memory_order_acquire);
  while (!e.latest.compare_exchange_weak(v, v2, std::memory_order_seq_cst,
                                         std::memory_order_acquire)) {
    st.cas_retries.fetch_add(1, std::memory_order_relaxed);
  }
  // Our predecessor may itself still be storage-unresolved (its writer is
  // mid-decision); every field read below needs it finalized.
  v->storage_wait();

  // Whatever open commuting group the superseded head carried is sealed by
  // this supersession — including when we are ourselves opening a new group
  // on top (a lost publication race between two matching accesses stacks two
  // groups; the close-node edges below still order them correctly).
  if (AccessGroup* pg = v->group()) seal_group(st, pg);

  const std::size_t old_ext = v->bytes();
  fetch_max(e.bytes, bytes);
  const std::size_t ext = e.bytes.load(std::memory_order_relaxed);

  if (also_reads && !available_to(task, v)) {
    add_edge(st, v->producer(), task, EdgeKind::True);  // RAW on the old value
  }

  void* storage = nullptr;
  bool renamed = false;
  SubmitterAccount* acct = nullptr;

  // Hazard probe: the seq_cst readers_pending read after our seq_cst CAS
  // pairs with the reader pin protocol (register seq_cst, then validate) —
  // a reader that validated against v is visible here, and a reader we do
  // not see will fail validation and retry against v2. Phantom counts from
  // recycled-block excursions can only inflate the probe (spurious rename,
  // never a missed hazard).
  const bool others_reading = v->readers_pending() > 0;
  const bool old_unproduced = !available_to(task, v);
  const bool too_small = v->renamed() && ext > old_ext;
  const bool hazard =
      (also_reads ? others_reading : (others_reading || old_unproduced)) ||
      too_small;

  if (!hazard) {
    // Raw-pred visibility for the policy's submit hook (see process_write);
    // v is stable here — we hold its former latest-token.
    if (track_raw_preds_ && also_reads && !available_to(task, v)) {
      v->register_reader(task, /*record_task=*/false);
      task->reads.push_back(v);
    }
    storage = v->storage();
    renamed = v->renamed();
    acct = v->account();
    v->disown_storage();
    st.in_place_reuses.fetch_add(1, std::memory_order_relaxed);
  } else {
    acct = task->account;
    storage = pool_.allocate(ext, acct);
    renamed = true;
    const std::size_t keep_lo = also_reads ? 0 : bytes;
    if (keep_lo < old_ext) {
      if (!also_reads && !available_to(task, v)) {
        add_edge(st, v->producer(), task, EdgeKind::True);
      }
      // v is stable (we hold its former latest-token), so this registration
      // needs no speculative pin.
      v->register_reader(task, /*record_task=*/false);
      task->reads.push_back(v);
      if (v->storage() == e.user_ptr) {
        e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
        task->user_pending_slots.push_back(&e.user_storage_pending);
      }
      task->copy_ins.push_back(
          CopyIn{static_cast<const char*>(v->storage()) + keep_lo,
                 static_cast<char*>(storage) + keep_lo, old_ext - keep_lo});
      st.copy_ins.fetch_add(1, std::memory_order_relaxed);
      st.copy_in_bytes.fetch_add(old_ext - keep_lo, std::memory_order_relaxed);
    }
    if (also_reads && ext > old_ext) {
      e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
      task->user_pending_slots.push_back(&e.user_storage_pending);
      task->copy_ins.push_back(
          CopyIn{static_cast<const char*>(e.user_ptr) + old_ext,
                 static_cast<char*>(storage) + old_ext, ext - old_ext});
      st.copy_ins.fetch_add(1, std::memory_order_relaxed);
      st.copy_in_bytes.fetch_add(ext - old_ext, std::memory_order_relaxed);
    }
  }

  if (group) {
    // Group bookkeeping mirrors the locked path; v is stable here (we hold
    // its former latest-token) and group->ready is still unset, so no joiner
    // reads these fields yet.
    group->bytes = ext;
    v->add_ref();
    group->prev = v;
  }

  // Resolve v2: readers pinned on it are spinning in storage_wait() for
  // exactly this release.
  v2->finalize_storage(storage, ext, renamed, acct);

  task->produces.push_back(v2);
  if (storage == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  v->release(pool_);  // drop the latest-token the CAS transferred to us
  return storage;
}

void* DependencyAnalyzer::process_commuting(CounterStripe& st, unsigned slot,
                                            TaskNode* task, DataEntry& e,
                                            const AccessDesc& access) {
  SMPSS_CHECK(close_factory_,
              "commutative/concurrent access before the runtime installed "
              "its group-close factory");
  SMPSS_ASSERT(access.dir != Dir::Concurrent || access.op.valid());

  // Try to join an open matching group at the chain head.
  while (true) {
    Version* v;
    if (lockfree_) {
      // Pin before inspecting: only a validated pin makes v's fields (group
      // pointer included) trustworthy against block recycling.
      v = pin_latest(st, task, e);
    } else {
      v = e.latest.load(std::memory_order_acquire);
    }
    AccessGroup* g = v->group();
    bool joined = false;
    if (g != nullptr) {
      while (!g->ready.load(std::memory_order_acquire)) cpu_relax();
      const bool match =
          g->mode == access.dir &&
          (access.dir != Dir::Concurrent || g->op == access.op) &&
          access.bytes <= g->bytes;
      if (match) {
        bool still_open;
        g->mu.lock();
        // Head revalidation closes the lock-free race where the group was
        // superseded (and sealed) between our pin and the lock.
        if (g->open.load(std::memory_order_relaxed) &&
            e.latest.load(std::memory_order_acquire) == v) {
          join_member(st, task, g);
          joined = true;
        }
        still_open = g->open.load(std::memory_order_relaxed);
        g->mu.unlock();
        if (!joined && still_open) {
          // Open but no longer at the head: retry against the new head.
          if (lockfree_) v->reader_finished(pool_);
          st.cas_retries.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Sealed group: fall through and open a fresh one on the head.
      } else {
        // A non-matching commuting access seals the group, exactly like a
        // plain read/write would.
        seal_group(st, g);
      }
    }
    if (joined) {
      void* s = v->storage_wait();
      if (lockfree_) v->reader_finished(pool_);
      return s;
    }
    if (lockfree_) v->reader_finished(pool_);
    break;
  }

  // Open a new group. The ordinary inout process_write runs with the close
  // node as the writing task; it seals whatever group the superseded head
  // still carried, wires the close node's RAW edge, and hangs the group off
  // the new version (see file comment in dep/access_group.hpp).
  st.groups_opened.fetch_add(1, std::memory_order_relaxed);
  auto* g = new AccessGroup(access.dir, access.op, access.bytes, workers_,
                            pool_);
  TaskNode* close = close_factory_(slot);
  g->close = close;
  void* storage =
      lockfree_ ? process_write_lockfree(st, slot, close, e, access.bytes,
                                         /*also_reads=*/true, g)
                : process_write(st, slot, close, e, access.bytes,
                                /*also_reads=*/true, g);
  if (access.dir == Dir::Commutative && !close->copy_ins.empty()) {
    // Renamed commutative storage: the inherit copies must land before the
    // first member's writes, not at close retire — move them onto the group,
    // where the first member to execute claims them under the token.
    SMPSS_ASSERT(close->copy_ins.size() <= 2);
    g->init_count = 0;
    for (const CopyIn& c : close->copy_ins) g->init_copies[g->init_count++] = c;
    close->copy_ins.clear();
    g->init_pending.store(true, std::memory_order_relaxed);
  }
  register_open_group(g);
  g->ready.store(true, std::memory_order_release);
  // The opener is the group's first member.
  g->mu.lock();
  join_member(st, task, g);
  g->mu.unlock();
  return storage;
}

void DependencyAnalyzer::join_member(CounterStripe& st, TaskNode* task,
                                     AccessGroup* g) {
  Version* prev = g->prev;
  if (g->mode == Dir::Commutative) {
    // Members read-modify-write the group storage directly: each orders
    // after the superseded version's producer (RAW on the inherited value —
    // also covers in-place reuse of unproduced storage) …
    if (prev != nullptr && !available_to(task, prev)) {
      add_edge(st, prev->producer(), task, EdgeKind::True);
    }
    // … and, with renaming off (in-place in user storage), after its still-
    // pending readers. Mutual exclusion among members is not an edge at all:
    // the scheduler arbitrates the shared token at acquire time.
    if (!renaming_ && prev != nullptr) {
      for (TaskNode* r : prev->reader_tasks()) {
        if (r != task && !r->finished_hint() && !task->has_ancestor(r)) {
          add_edge(st, r, task, EdgeKind::Anti);
        }
      }
    }
    // A task naming the same commutative datum twice must not carry the
    // token twice — the all-or-nothing acquire would deadlock against its
    // own first copy.
    bool have_token = false;
    for (std::size_t i = 0; i < task->conflicts.size(); ++i)
      have_token |= task->conflicts[i] == &g->token;
    if (!have_token) {
      g->add_ref();
      task->conflicts.push_back(&g->token);
    }
  } else {
    // Concurrent members touch only their worker-private buffer, so they
    // need no ordering whatsoever — the close node (which owns the inherit
    // copy and the combine) carries the group's data dependences.
    g->add_ref();
    task->reduce_fixups.push_back(TaskNode::ReduceFixup{
        static_cast<std::uint32_t>(task->resolved.size()), g});
  }
  st.group_joins.fetch_add(1, std::memory_order_relaxed);
  // The Member edge is the close node's completion count — not an ordering
  // constraint on the member.
  add_edge(st, task, g->close, EdgeKind::Member);
}

void DependencyAnalyzer::seal_group(CounterStripe& st, AccessGroup* g) {
  // The group may be published but not yet initialized (lock-free path).
  while (!g->ready.load(std::memory_order_acquire)) cpu_relax();
  bool winner = false;
  g->mu.lock();
  if (g->open.load(std::memory_order_relaxed)) {
    g->open.store(false, std::memory_order_relaxed);
    winner = true;
  }
  g->mu.unlock();
  if (!winner) return;
  st.groups_closed.fetch_add(1, std::memory_order_relaxed);
  // Drop the close node's open-guard; if every member already finished, the
  // node is ready for Runtime::retire_close now.
  TaskNode* close = g->close;
  if (close->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    push_pending_close(close);
  }
}

void DependencyAnalyzer::push_pending_close(TaskNode* close) noexcept {
  TaskNode* head = pending_closes_.load(std::memory_order_relaxed);
  do {
    close->queue_next = head;
  } while (!pending_closes_.compare_exchange_weak(head, close,
                                                  std::memory_order_release,
                                                  std::memory_order_relaxed));
}

void DependencyAnalyzer::register_open_group(AccessGroup* g) {
  std::lock_guard<std::mutex> lk(groups_mu_);
  // Lazy prune: sealed groups need no barrier attention.
  auto dead = std::remove_if(open_groups_.begin(), open_groups_.end(),
                             [](AccessGroup* og) {
                               if (og->open.load(std::memory_order_acquire))
                                 return false;
                               og->release();
                               return true;
                             });
  open_groups_.erase(dead, open_groups_.end());
  g->add_ref();
  open_groups_.push_back(g);
}

void DependencyAnalyzer::close_open_groups() {
  std::vector<AccessGroup*> snap;
  {
    std::lock_guard<std::mutex> lk(groups_mu_);
    snap.swap(open_groups_);
  }
  CounterStripe& st = stripes_[0];
  for (AccessGroup* g : snap) {
    seal_group(st, g);
    g->release();
  }
}

void DependencyAnalyzer::flush_all() {
  CounterStripe& st = stripes_[0];
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    Shard& sh = shards_[s];
    std::lock_guard<std::mutex> lk(sh.mu);
    for (auto& bucket : sh.buckets) {
      DataEntry* p = bucket.load(std::memory_order_acquire);
      bucket.store(nullptr, std::memory_order_relaxed);
      while (p != nullptr) {
        DataEntry* next = p->next.load(std::memory_order_relaxed);
        Version* v = p->latest.load(std::memory_order_acquire);
        SMPSS_ASSERT(v->is_produced());
        SMPSS_ASSERT(v->readers_pending() == 0);
        // The merged-extent invariant copy-back correctness rests on.
        SMPSS_ASSERT(v->bytes() == p->bytes.load(std::memory_order_relaxed));
        if (v->storage() != p->user_ptr) {
          std::memcpy(p->user_ptr, v->storage(), v->bytes());
          st.copyback_bytes.fetch_add(v->bytes(), std::memory_order_relaxed);
        }
        v->release(pool_);
        delete p;
        p = next;
      }
    }
  }
}

DataEntry* DependencyAnalyzer::find(const void* addr) {
  Shard& sh = shard_for(addr);
  for (DataEntry* p =
           sh.buckets[bucket_of_hash(hash_of(addr))].load(
               std::memory_order_acquire);
       p != nullptr; p = p->next.load(std::memory_order_acquire)) {
    if (p->user_ptr == addr) return p;
  }
  return nullptr;
}

void DependencyAnalyzer::copy_back_latest(DataEntry& entry) {
  Version* v = entry.latest.load(std::memory_order_acquire);
  SMPSS_ASSERT(v->is_produced());
  SMPSS_ASSERT(v->bytes() == entry.bytes.load(std::memory_order_relaxed));
  if (v->storage() != entry.user_ptr) {
    std::memcpy(entry.user_ptr, v->storage(), v->bytes());
    stripes_[0].copyback_bytes.fetch_add(v->bytes(),
                                         std::memory_order_relaxed);
  }
}

DependencyAnalyzer::CopyBack DependencyAnalyzer::try_copy_back_lockfree(
    const void* addr) {
  DataEntry* e = find(addr);
  if (e == nullptr) return CopyBack::kUntracked;
  CounterStripe& st = stripes_[0];
  // Pin the head as a reader: any writer racing in must now see
  // readers_pending > 0 and rename, so the bytes we copy from stay stable
  // for the duration of the pin.
  Version* v = pin_latest(st, /*task=*/nullptr, *e);
  const bool ready =
      v->is_produced() &&
      e->user_storage_pending.load(std::memory_order_acquire) == 0;
  if (ready) {
    void* s = v->storage_wait();
    if (s != e->user_ptr) {
      std::memcpy(e->user_ptr, s, v->bytes());
      st.copyback_bytes.fetch_add(v->bytes(), std::memory_order_relaxed);
    }
  }
  v->reader_finished(pool_);
  return ready ? CopyBack::kDone : CopyBack::kNotReady;
}

DependencyAnalyzer::Counters DependencyAnalyzer::counters_snapshot() const {
  Counters out;
  for (unsigned i = 0; i < kStripes; ++i) {
    const CounterStripe& st = stripes_[i];
    out.accesses += st.accesses.load(std::memory_order_relaxed);
    out.raw_edges += st.raw_edges.load(std::memory_order_relaxed);
    out.war_edges += st.war_edges.load(std::memory_order_relaxed);
    out.waw_edges += st.waw_edges.load(std::memory_order_relaxed);
    out.in_place_reuses +=
        st.in_place_reuses.load(std::memory_order_relaxed);
    out.copy_ins += st.copy_ins.load(std::memory_order_relaxed);
    out.copy_in_bytes += st.copy_in_bytes.load(std::memory_order_relaxed);
    out.copyback_bytes += st.copyback_bytes.load(std::memory_order_relaxed);
    out.tracked_objects +=
        st.tracked_objects.load(std::memory_order_relaxed);
    out.cas_retries += st.cas_retries.load(std::memory_order_relaxed);
    out.groups_opened += st.groups_opened.load(std::memory_order_relaxed);
    out.group_joins += st.group_joins.load(std::memory_order_relaxed);
    out.groups_closed += st.groups_closed.load(std::memory_order_relaxed);
    out.commute_edges += st.commute_edges.load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t DependencyAnalyzer::live_entries() const noexcept {
  std::size_t n = 0;
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    for (const auto& bucket : shards_[s].buckets) {
      for (DataEntry* p = bucket.load(std::memory_order_acquire); p != nullptr;
           p = p->next.load(std::memory_order_acquire)) {
        ++n;
      }
    }
  }
  return n;
}

}  // namespace smpss
