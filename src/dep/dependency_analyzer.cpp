#include "dep/dependency_analyzer.hpp"

#include <cstring>

namespace smpss {

namespace {
/// Nested-task scoping rule: a version counts as available to `task` when it
/// is produced, has no producer (initial data), or its producer is `task`
/// itself or one of `task`'s ancestors. An ancestor is mid-execution — its
/// working copy holds exactly the value the child is meant to operate on —
/// and an ancestor→descendant edge would deadlock against taskwait(). The
/// contract this implies: data a child task touches must be covered by an
/// ancestor's footprint (or be subtree-private), and no outside task may be
/// submitted against it while the subtree is active.
bool available_to(const TaskNode* task, const Version* v) {
  const TaskNode* prod = v->producer();
  return prod == nullptr || v->is_produced() || prod == task ||
         task->has_ancestor(prod);
}

constexpr unsigned kMaxShards = 1u << 10;

unsigned round_up_pow2(unsigned n) {
  unsigned p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

DependencyAnalyzer::DependencyAnalyzer(RenamePool& pool, bool renaming_enabled,
                                       unsigned shard_count,
                                       GraphRecorder* recorder,
                                       unsigned owner_slots,
                                       unsigned cache_blocks, bool lockfree)
    : pool_(pool),
      renaming_(renaming_enabled),
      // The no-renaming ablation records per-version reader task lists for
      // WAR edges; that needs the submission lock, so it forces locked mode.
      lockfree_(lockfree && renaming_enabled),
      recorder_(recorder),
      vpool_(Version::block_bytes(), alignof(std::max_align_t),
             owner_slots < 1 ? 1 : owner_slots,
             cache_blocks < 1 ? 1 : cache_blocks) {
  if (shard_count < 1) shard_count = 1;
  if (shard_count > kMaxShards) shard_count = kMaxShards;
  shard_count = round_up_pow2(shard_count);
  shard_mask_ = shard_count - 1;
  shards_ = std::make_unique<Shard[]>(shard_count);
  stripes_ = std::make_unique<CounterStripe[]>(kStripes);
}

DependencyAnalyzer::~DependencyAnalyzer() {
  // Normal shutdown goes through flush_all() after a barrier; this handles
  // abandoned runtimes without leaking versions or entries.
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    for (auto& bucket : shards_[s].buckets) {
      DataEntry* p = bucket.load(std::memory_order_acquire);
      while (p != nullptr) {
        DataEntry* next = p->next.load(std::memory_order_relaxed);
        if (Version* v = p->latest.load(std::memory_order_acquire))
          v->release(pool_);
        delete p;
        p = next;
      }
    }
  }
}

DataEntry& DependencyAnalyzer::entry_for(CounterStripe& st, unsigned slot,
                                         void* addr, std::size_t bytes) {
  Shard& sh = shard_for(addr);
  std::atomic<DataEntry*>& bucket = sh.buckets[bucket_of_hash(hash_of(addr))];
  DataEntry* head = bucket.load(std::memory_order_acquire);
  for (DataEntry* p = head; p != nullptr;
       p = p->next.load(std::memory_order_acquire)) {
    if (p->user_ptr == addr) return *p;
  }
  // Miss: build the entry with its initial version — the program's own
  // storage, already "produced" — and CAS-prepend it. Chains are
  // prepend-only until flush (which requires quiescence), so the walks above
  // and below never race with reclamation.
  auto* e = new DataEntry;
  e->user_ptr = addr;
  e->bytes.store(bytes, std::memory_order_relaxed);
  Version* v0 = Version::create(vpool_, slot, e, addr, bytes,
                                /*renamed=*/false, /*producer=*/nullptr);
  e->latest.store(v0, std::memory_order_release);
  DataEntry* checked = head;  // everything from here down is already scanned
  while (true) {
    e->next.store(head, std::memory_order_relaxed);
    if (bucket.compare_exchange_weak(head, e, std::memory_order_release,
                                     std::memory_order_acquire)) {
      st.tracked_objects.fetch_add(1, std::memory_order_relaxed);
      return *e;
    }
    // Lost the insert race: scan only the newly prepended prefix for a
    // duplicate of our address; the loser destroys its speculative entry.
    for (DataEntry* p = head; p != checked;
         p = p->next.load(std::memory_order_acquire)) {
      if (p->user_ptr == addr) {
        v0->release(pool_);
        delete e;
        return *p;
      }
    }
    checked = head;
  }
}

void DependencyAnalyzer::add_edge(CounterStripe& st, TaskNode* pred,
                                  TaskNode* succ, EdgeKind kind) {
  SMPSS_ASSERT(pred != succ);
  // Release-side fast path: a predecessor whose completion hint is already
  // visible can never accept a new successor — the hint is the successor
  // stack's closed sentinel, so a true hint means add_successor would
  // refuse. Skipping it here keeps the retired producer's stack word
  // untouched (no RMW on a cold cache line) for the common re-read of
  // long-finished data.
  if (pred->finished_hint()) return;
  if (!pred->add_successor(succ)) return;  // predecessor already completed
  switch (kind) {
    case EdgeKind::True:
      st.raw_edges.fetch_add(1, std::memory_order_relaxed);
      break;
    case EdgeKind::Anti:
      st.war_edges.fetch_add(1, std::memory_order_relaxed);
      break;
    case EdgeKind::Output:
      st.waw_edges.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (recorder_) recorder_->record_edge(pred->seq, succ->seq, kind);
  // Per-stream accounting: edges are charged to the *successor* (the task
  // whose submission discovered the dependence) — that is the stream whose
  // traffic created the analyzer work.
  if (succ->account)
    succ->account->edges.fetch_add(1, std::memory_order_relaxed);
}

Version* DependencyAnalyzer::pin_latest(CounterStripe& st, TaskNode* task,
                                        DataEntry& e) {
  while (true) {
    Version* v = e.latest.load(std::memory_order_acquire);
    // Register first (count + ref), then validate the head is unchanged.
    // The seq_cst increment inside register_reader pairs with the writer's
    // seq_cst publication CAS and readers_pending probe (Dekker): either our
    // validation sees the writer's new head and we retry, or the writer's
    // probe sees our pending count. If the version died and the block was
    // recycled in between, the abort makes the excursion net-zero (see
    // dep/version.hpp).
    v->register_reader(task, /*record_task=*/false);
    if (e.latest.load(std::memory_order_seq_cst) == v) return v;
    v->abort_reader_registration(pool_);
    st.cas_retries.fetch_add(1, std::memory_order_relaxed);
  }
}

void* DependencyAnalyzer::process(TaskNode* task, const AccessDesc& access) {
  SMPSS_ASSERT(!access.has_region);  // region accesses go to RegionAnalyzer
  const unsigned slot = task->submit_slot;
  CounterStripe& st = stripe_for(slot);
  st.accesses.fetch_add(1, std::memory_order_relaxed);
  if (task->account)
    task->account->accesses.fetch_add(1, std::memory_order_relaxed);
  DataEntry& e = entry_for(st, slot, access.addr, access.bytes);
  switch (access.dir) {
    case Dir::In:
      return process_read(st, task, e, access.bytes);
    case Dir::Out:
      if (lockfree_)
        return process_write_lockfree(st, slot, task, e, access.bytes,
                                      /*also_reads=*/false);
      return process_write(st, slot, task, e, access.bytes,
                           /*also_reads=*/false);
    case Dir::InOut:
      if (lockfree_)
        return process_write_lockfree(st, slot, task, e, access.bytes,
                                      /*also_reads=*/true);
      return process_write(st, slot, task, e, access.bytes,
                           /*also_reads=*/true);
  }
  return nullptr;  // unreachable
}

void* DependencyAnalyzer::process_read(CounterStripe& st, TaskNode* task,
                                       DataEntry& e, std::size_t bytes) {
  Version* v;
  if (lockfree_) {
    // The speculative pin IS the reader registration once validated.
    v = pin_latest(st, task, e);
  } else {
    v = e.latest.load(std::memory_order_acquire);
    // Reader task recording feeds WAR edges, which only the no-renaming
    // ablation emits; skip the vector churn (and per-reader task refs) when
    // renaming absorbs those hazards.
    v->register_reader(task, /*record_task=*/!renaming_);
  }
  // A freshly CAS-published version may still be storage-unresolved while
  // its writer decides between reuse and rename; bytes()/renamed() are only
  // stable after the wait.
  void* s = v->storage_wait();
  SMPSS_CHECK(!v->renamed() || bytes <= v->bytes(),
              "task declares a larger input size than the renamed version "
              "holds — inconsistent parameter sizes on one datum");
  if (!available_to(task, v)) {
    add_edge(st, v->producer(), task, EdgeKind::True);
  }
  task->reads.push_back(v);
  if (s == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  return s;
}

void* DependencyAnalyzer::process_write(CounterStripe& st, unsigned slot,
                                        TaskNode* task, DataEntry& e,
                                        std::size_t bytes, bool also_reads) {
  Version* v = e.latest.load(std::memory_order_acquire);

  // Merged-extent invariant: e.bytes is the largest extent ever written and
  // every version covers all of it, so copy-back of `latest` alone restores
  // the full datum. A write smaller than the current extent therefore
  // *inherits* the predecessor's tail bytes instead of truncating them; a
  // write larger than it grows the extent.
  const std::size_t old_ext = v->bytes();
  fetch_max(e.bytes, bytes);
  const std::size_t ext = e.bytes.load(std::memory_order_relaxed);

  if (also_reads && !available_to(task, v)) {
    add_edge(st, v->producer(), task, EdgeKind::True);  // RAW on the old value
  }

  void* storage = nullptr;
  bool renamed = false;
  SubmitterAccount* acct = nullptr;

  if (renaming_) {
    // Renaming configuration: never block on WAR/WAW — either reuse the old
    // version's bytes in place when nothing else will touch them, or move
    // the new version to fresh aligned storage. An old version produced by
    // an ancestor counts as produced (see available_to): the child writes
    // inside the ancestor's access, so reusing its bytes is the coherent
    // choice, not a hazard.
    const bool others_reading = v->readers_pending() > 0;
    const bool old_unproduced = !available_to(task, v);
    // A renamed buffer's capacity is the extent it was allocated with; a
    // growing write cannot reuse it in place (user storage can always grow —
    // the program owns at least the declared bytes at that address).
    const bool too_small = v->renamed() && ext > old_ext;
    const bool hazard = (also_reads ? others_reading
                                    : (others_reading || old_unproduced)) ||
                        too_small;
    if (!hazard) {
      // The RAW on the reused value is ordered by the pending-count edge
      // alone; with raw-pred tracking on, also register it as a read so the
      // scheduling policy's submit hook sees the producer (the reader token
      // only extends the superseded version's lifetime to this completion).
      if (track_raw_preds_ && also_reads && !available_to(task, v)) {
        v->register_reader(task, /*record_task=*/false);
        task->reads.push_back(v);
      }
      storage = v->storage();
      renamed = v->renamed();
      // In-place reuse moves buffer ownership — and with it the stream
      // charge: the credit must go to whichever account paid for the bytes.
      acct = v->account();
      v->disown_storage();  // ownership moves to the new version
      st.in_place_reuses.fetch_add(1, std::memory_order_relaxed);
      // In-place merge is free: tail bytes beyond `bytes` (if any) are
      // already sitting in this storage.
    } else {
      acct = task->account;
      storage = pool_.allocate(ext, acct);
      renamed = true;
      // Bytes the new version must inherit from the predecessor: everything
      // for an inout (the body starts from the old value), the tail beyond
      // the declared write for a shrinking out.
      const std::size_t keep_lo = also_reads ? 0 : bytes;
      if (keep_lo < old_ext) {
        if (!also_reads && !available_to(task, v)) {
          // The inherited tail is a true dependence on the old producer even
          // though the body itself never reads it.
          add_edge(st, v->producer(), task, EdgeKind::True);
        }
        // Register as reader (keeps the old version's storage alive until
        // this task completes) and schedule the byte copy.
        v->register_reader(task, /*record_task=*/false);
        task->reads.push_back(v);
        if (v->storage() == e.user_ptr) {
          e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
          task->user_pending_slots.push_back(&e.user_storage_pending);
        }
        task->copy_ins.push_back(
            CopyIn{static_cast<const char*>(v->storage()) + keep_lo,
                   static_cast<char*>(storage) + keep_lo, old_ext - keep_lo});
        st.copy_ins.fetch_add(1, std::memory_order_relaxed);
        st.copy_in_bytes.fetch_add(old_ext - keep_lo,
                                   std::memory_order_relaxed);
      }
      if (also_reads && ext > old_ext) {
        // Growing inout: bytes [old_ext, ext) were never written by any
        // task, so the body's initial value for them is the program's own
        // storage. Reading it at task start needs the same quiescence
        // accounting as any other user-storage access.
        e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
        task->user_pending_slots.push_back(&e.user_storage_pending);
        task->copy_ins.push_back(
            CopyIn{static_cast<const char*>(e.user_ptr) + old_ext,
                   static_cast<char*>(storage) + old_ext, ext - old_ext});
        st.copy_ins.fetch_add(1, std::memory_order_relaxed);
        st.copy_in_bytes.fetch_add(ext - old_ext, std::memory_order_relaxed);
      }
    }
  } else {
    // No-renaming ablation: everything stays in the user's storage and the
    // hazards the paper eliminates become explicit graph edges. Ancestor
    // accesses are exempt for the same scoping reason as above. The merge
    // invariant is trivial here — all writes land in user storage.
    if (!available_to(task, v)) {
      add_edge(st, v->producer(), task, EdgeKind::Output);
    }
    for (TaskNode* r : v->reader_tasks()) {
      if (r != task && !r->finished_hint() && !task->has_ancestor(r)) {
        add_edge(st, r, task, EdgeKind::Anti);
      }
    }
    // Same raw-pred visibility as the renaming reuse path above.
    if (track_raw_preds_ && also_reads && !available_to(task, v)) {
      v->register_reader(task, /*record_task=*/false);
      task->reads.push_back(v);
    }
    storage = v->storage();
    renamed = false;
    v->disown_storage();
  }

  auto* v2 = Version::create(vpool_, slot, &e, storage, ext, renamed, task,
                             acct);
  e.latest.store(v2, std::memory_order_release);
  v->release(pool_);  // drop the superseded version's latest-token
  task->produces.push_back(v2);
  if (storage == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  return storage;
}

void* DependencyAnalyzer::process_write_lockfree(CounterStripe& st,
                                                 unsigned slot, TaskNode* task,
                                                 DataEntry& e,
                                                 std::size_t bytes,
                                                 bool also_reads) {
  SMPSS_ASSERT(renaming_);
  // Publish first, decide later: the new version is CAS-swung onto the chain
  // head with its storage still unresolved. Success transfers the superseded
  // version's latest-token to us — from that point v cannot die under us and
  // no later writer can touch it (writers of one datum serialize on this
  // CAS). Crucially, v is NOT read at all before the CAS: a lost race means
  // the pointer may refer to a recycled block, and only the transferred
  // token makes its fields trustworthy.
  Version* v2 = Version::create(vpool_, slot, &e, Version::unresolved_storage(),
                                /*bytes=*/0, /*renamed=*/false, task);
  Version* v = e.latest.load(std::memory_order_acquire);
  while (!e.latest.compare_exchange_weak(v, v2, std::memory_order_seq_cst,
                                         std::memory_order_acquire)) {
    st.cas_retries.fetch_add(1, std::memory_order_relaxed);
  }
  // Our predecessor may itself still be storage-unresolved (its writer is
  // mid-decision); every field read below needs it finalized.
  v->storage_wait();

  const std::size_t old_ext = v->bytes();
  fetch_max(e.bytes, bytes);
  const std::size_t ext = e.bytes.load(std::memory_order_relaxed);

  if (also_reads && !available_to(task, v)) {
    add_edge(st, v->producer(), task, EdgeKind::True);  // RAW on the old value
  }

  void* storage = nullptr;
  bool renamed = false;
  SubmitterAccount* acct = nullptr;

  // Hazard probe: the seq_cst readers_pending read after our seq_cst CAS
  // pairs with the reader pin protocol (register seq_cst, then validate) —
  // a reader that validated against v is visible here, and a reader we do
  // not see will fail validation and retry against v2. Phantom counts from
  // recycled-block excursions can only inflate the probe (spurious rename,
  // never a missed hazard).
  const bool others_reading = v->readers_pending() > 0;
  const bool old_unproduced = !available_to(task, v);
  const bool too_small = v->renamed() && ext > old_ext;
  const bool hazard =
      (also_reads ? others_reading : (others_reading || old_unproduced)) ||
      too_small;

  if (!hazard) {
    // Raw-pred visibility for the policy's submit hook (see process_write);
    // v is stable here — we hold its former latest-token.
    if (track_raw_preds_ && also_reads && !available_to(task, v)) {
      v->register_reader(task, /*record_task=*/false);
      task->reads.push_back(v);
    }
    storage = v->storage();
    renamed = v->renamed();
    acct = v->account();
    v->disown_storage();
    st.in_place_reuses.fetch_add(1, std::memory_order_relaxed);
  } else {
    acct = task->account;
    storage = pool_.allocate(ext, acct);
    renamed = true;
    const std::size_t keep_lo = also_reads ? 0 : bytes;
    if (keep_lo < old_ext) {
      if (!also_reads && !available_to(task, v)) {
        add_edge(st, v->producer(), task, EdgeKind::True);
      }
      // v is stable (we hold its former latest-token), so this registration
      // needs no speculative pin.
      v->register_reader(task, /*record_task=*/false);
      task->reads.push_back(v);
      if (v->storage() == e.user_ptr) {
        e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
        task->user_pending_slots.push_back(&e.user_storage_pending);
      }
      task->copy_ins.push_back(
          CopyIn{static_cast<const char*>(v->storage()) + keep_lo,
                 static_cast<char*>(storage) + keep_lo, old_ext - keep_lo});
      st.copy_ins.fetch_add(1, std::memory_order_relaxed);
      st.copy_in_bytes.fetch_add(old_ext - keep_lo, std::memory_order_relaxed);
    }
    if (also_reads && ext > old_ext) {
      e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
      task->user_pending_slots.push_back(&e.user_storage_pending);
      task->copy_ins.push_back(
          CopyIn{static_cast<const char*>(e.user_ptr) + old_ext,
                 static_cast<char*>(storage) + old_ext, ext - old_ext});
      st.copy_ins.fetch_add(1, std::memory_order_relaxed);
      st.copy_in_bytes.fetch_add(ext - old_ext, std::memory_order_relaxed);
    }
  }

  // Resolve v2: readers pinned on it are spinning in storage_wait() for
  // exactly this release.
  v2->finalize_storage(storage, ext, renamed, acct);

  task->produces.push_back(v2);
  if (storage == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  v->release(pool_);  // drop the latest-token the CAS transferred to us
  return storage;
}

void DependencyAnalyzer::flush_all() {
  CounterStripe& st = stripes_[0];
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    Shard& sh = shards_[s];
    std::lock_guard<std::mutex> lk(sh.mu);
    for (auto& bucket : sh.buckets) {
      DataEntry* p = bucket.load(std::memory_order_acquire);
      bucket.store(nullptr, std::memory_order_relaxed);
      while (p != nullptr) {
        DataEntry* next = p->next.load(std::memory_order_relaxed);
        Version* v = p->latest.load(std::memory_order_acquire);
        SMPSS_ASSERT(v->is_produced());
        SMPSS_ASSERT(v->readers_pending() == 0);
        // The merged-extent invariant copy-back correctness rests on.
        SMPSS_ASSERT(v->bytes() == p->bytes.load(std::memory_order_relaxed));
        if (v->storage() != p->user_ptr) {
          std::memcpy(p->user_ptr, v->storage(), v->bytes());
          st.copyback_bytes.fetch_add(v->bytes(), std::memory_order_relaxed);
        }
        v->release(pool_);
        delete p;
        p = next;
      }
    }
  }
}

DataEntry* DependencyAnalyzer::find(const void* addr) {
  Shard& sh = shard_for(addr);
  for (DataEntry* p =
           sh.buckets[bucket_of_hash(hash_of(addr))].load(
               std::memory_order_acquire);
       p != nullptr; p = p->next.load(std::memory_order_acquire)) {
    if (p->user_ptr == addr) return p;
  }
  return nullptr;
}

void DependencyAnalyzer::copy_back_latest(DataEntry& entry) {
  Version* v = entry.latest.load(std::memory_order_acquire);
  SMPSS_ASSERT(v->is_produced());
  SMPSS_ASSERT(v->bytes() == entry.bytes.load(std::memory_order_relaxed));
  if (v->storage() != entry.user_ptr) {
    std::memcpy(entry.user_ptr, v->storage(), v->bytes());
    stripes_[0].copyback_bytes.fetch_add(v->bytes(),
                                         std::memory_order_relaxed);
  }
}

DependencyAnalyzer::CopyBack DependencyAnalyzer::try_copy_back_lockfree(
    const void* addr) {
  DataEntry* e = find(addr);
  if (e == nullptr) return CopyBack::kUntracked;
  CounterStripe& st = stripes_[0];
  // Pin the head as a reader: any writer racing in must now see
  // readers_pending > 0 and rename, so the bytes we copy from stay stable
  // for the duration of the pin.
  Version* v = pin_latest(st, /*task=*/nullptr, *e);
  const bool ready =
      v->is_produced() &&
      e->user_storage_pending.load(std::memory_order_acquire) == 0;
  if (ready) {
    void* s = v->storage_wait();
    if (s != e->user_ptr) {
      std::memcpy(e->user_ptr, s, v->bytes());
      st.copyback_bytes.fetch_add(v->bytes(), std::memory_order_relaxed);
    }
  }
  v->reader_finished(pool_);
  return ready ? CopyBack::kDone : CopyBack::kNotReady;
}

DependencyAnalyzer::Counters DependencyAnalyzer::counters_snapshot() const {
  Counters out;
  for (unsigned i = 0; i < kStripes; ++i) {
    const CounterStripe& st = stripes_[i];
    out.accesses += st.accesses.load(std::memory_order_relaxed);
    out.raw_edges += st.raw_edges.load(std::memory_order_relaxed);
    out.war_edges += st.war_edges.load(std::memory_order_relaxed);
    out.waw_edges += st.waw_edges.load(std::memory_order_relaxed);
    out.in_place_reuses +=
        st.in_place_reuses.load(std::memory_order_relaxed);
    out.copy_ins += st.copy_ins.load(std::memory_order_relaxed);
    out.copy_in_bytes += st.copy_in_bytes.load(std::memory_order_relaxed);
    out.copyback_bytes += st.copyback_bytes.load(std::memory_order_relaxed);
    out.tracked_objects +=
        st.tracked_objects.load(std::memory_order_relaxed);
    out.cas_retries += st.cas_retries.load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t DependencyAnalyzer::live_entries() const noexcept {
  std::size_t n = 0;
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    for (const auto& bucket : shards_[s].buckets) {
      for (DataEntry* p = bucket.load(std::memory_order_acquire); p != nullptr;
           p = p->next.load(std::memory_order_acquire)) {
        ++n;
      }
    }
  }
  return n;
}

}  // namespace smpss
