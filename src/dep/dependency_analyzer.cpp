#include "dep/dependency_analyzer.hpp"

#include <cstring>

namespace smpss {

namespace {
/// Nested-task scoping rule: a version counts as available to `task` when it
/// is produced, has no producer (initial data), or its producer is `task`
/// itself or one of `task`'s ancestors. An ancestor is mid-execution — its
/// working copy holds exactly the value the child is meant to operate on —
/// and an ancestor→descendant edge would deadlock against taskwait(). The
/// contract this implies: data a child task touches must be covered by an
/// ancestor's footprint (or be subtree-private), and no outside task may be
/// submitted against it while the subtree is active.
bool available_to(const TaskNode* task, const Version* v) {
  const TaskNode* prod = v->producer();
  return prod == nullptr || v->is_produced() || prod == task ||
         task->has_ancestor(prod);
}

constexpr unsigned kMaxShards = 1u << 10;

unsigned round_up_pow2(unsigned n) {
  unsigned p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

DependencyAnalyzer::DependencyAnalyzer(RenamePool& pool, bool renaming_enabled,
                                       unsigned shard_count,
                                       GraphRecorder* recorder)
    : pool_(pool), renaming_(renaming_enabled), recorder_(recorder) {
  if (shard_count < 1) shard_count = 1;
  if (shard_count > kMaxShards) shard_count = kMaxShards;
  shard_count = round_up_pow2(shard_count);
  shard_mask_ = shard_count - 1;
  shards_ = std::make_unique<Shard[]>(shard_count);
}

DependencyAnalyzer::~DependencyAnalyzer() {
  // Normal shutdown goes through flush_all() after a barrier; this handles
  // abandoned runtimes without leaking versions.
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    for (auto& [addr, e] : shards_[s].entries) {
      if (e.latest) e.latest->release(pool_);
    }
  }
}

DataEntry& DependencyAnalyzer::entry_for(Shard& sh, void* addr,
                                         std::size_t bytes) {
  auto [it, inserted] = sh.entries.try_emplace(addr);
  DataEntry& e = it->second;
  if (inserted) {
    e.user_ptr = addr;
    e.bytes = bytes;
    // Initial version: the program's own storage, already "produced".
    e.latest = new Version(&e, addr, bytes, /*renamed=*/false,
                           /*producer=*/nullptr);
    ++sh.counters.tracked_objects;
  }
  // Growth of e.bytes is a write-side decision (process_write): the tracked
  // extent is the largest extent ever *written*, and the latest version
  // always covers it (the copy-back invariant).
  return e;
}

void DependencyAnalyzer::add_edge(Shard& sh, TaskNode* pred, TaskNode* succ,
                                  EdgeKind kind) {
  SMPSS_ASSERT(pred != succ);
  // Release-side fast path: a predecessor whose completion hint is already
  // visible can never accept a new successor — the hint is published after
  // completion flips `completed_` under the successor lock, so a true hint
  // implies add_successor would refuse. Skipping it here keeps the retired
  // producer's lock word untouched (no RMW on a cold cache line) for the
  // common re-read of long-finished data.
  if (pred->finished_hint()) return;
  if (!pred->add_successor(succ)) return;  // predecessor already completed
  switch (kind) {
    case EdgeKind::True: ++sh.counters.raw_edges; break;
    case EdgeKind::Anti: ++sh.counters.war_edges; break;
    case EdgeKind::Output: ++sh.counters.waw_edges; break;
  }
  if (recorder_) recorder_->record_edge(pred->seq, succ->seq, kind);
  // Per-stream accounting: edges are charged to the *successor* (the task
  // whose submission discovered the dependence) — that is the stream whose
  // traffic created the analyzer work.
  if (succ->account)
    succ->account->edges.fetch_add(1, std::memory_order_relaxed);
}

void* DependencyAnalyzer::process(TaskNode* task, const AccessDesc& access) {
  SMPSS_ASSERT(!access.has_region);  // region accesses go to RegionAnalyzer
  Shard& sh = shard_for(access.addr);
  ++sh.counters.accesses;
  if (task->account)
    task->account->accesses.fetch_add(1, std::memory_order_relaxed);
  DataEntry& e = entry_for(sh, access.addr, access.bytes);
  switch (access.dir) {
    case Dir::In:
      return process_read(sh, task, e, access.bytes);
    case Dir::Out:
      return process_write(sh, task, e, access.bytes, /*also_reads=*/false);
    case Dir::InOut:
      return process_write(sh, task, e, access.bytes, /*also_reads=*/true);
  }
  return nullptr;  // unreachable
}

void* DependencyAnalyzer::process_read(Shard& sh, TaskNode* task, DataEntry& e,
                                       std::size_t bytes) {
  Version* v = e.latest;
  SMPSS_CHECK(!v->renamed() || bytes <= v->bytes(),
              "task declares a larger input size than the renamed version "
              "holds — inconsistent parameter sizes on one datum");
  if (!available_to(task, v)) {
    add_edge(sh, v->producer(), task, EdgeKind::True);
  }
  v->register_reader(task);
  task->reads.push_back(v);
  if (v->storage() == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  return v->storage();
}

void* DependencyAnalyzer::process_write(Shard& sh, TaskNode* task,
                                        DataEntry& e, std::size_t bytes,
                                        bool also_reads) {
  Version* v = e.latest;

  // Merged-extent invariant: e.bytes is the largest extent ever written and
  // every version covers all of it, so copy-back of `latest` alone restores
  // the full datum. A write smaller than the current extent therefore
  // *inherits* the predecessor's tail bytes instead of truncating them; a
  // write larger than it grows the extent.
  const std::size_t old_ext = v->bytes();
  if (bytes > e.bytes) e.bytes = bytes;
  const std::size_t ext = e.bytes;

  if (also_reads && !available_to(task, v)) {
    add_edge(sh, v->producer(), task, EdgeKind::True);  // RAW on the old value
  }

  void* storage = nullptr;
  bool renamed = false;
  SubmitterAccount* acct = nullptr;

  if (renaming_) {
    // Renaming configuration: never block on WAR/WAW — either reuse the old
    // version's bytes in place when nothing else will touch them, or move
    // the new version to fresh aligned storage. An old version produced by
    // an ancestor counts as produced (see available_to): the child writes
    // inside the ancestor's access, so reusing its bytes is the coherent
    // choice, not a hazard.
    const bool others_reading = v->readers_pending() > 0;
    const bool old_unproduced = !available_to(task, v);
    // A renamed buffer's capacity is the extent it was allocated with; a
    // growing write cannot reuse it in place (user storage can always grow —
    // the program owns at least the declared bytes at that address).
    const bool too_small = v->renamed() && ext > old_ext;
    const bool hazard = (also_reads ? others_reading
                                    : (others_reading || old_unproduced)) ||
                        too_small;
    if (!hazard) {
      storage = v->storage();
      renamed = v->renamed();
      // In-place reuse moves buffer ownership — and with it the stream
      // charge: the credit must go to whichever account paid for the bytes.
      acct = v->account();
      v->disown_storage();  // ownership moves to the new version
      ++sh.counters.in_place_reuses;
      // In-place merge is free: tail bytes beyond `bytes` (if any) are
      // already sitting in this storage.
    } else {
      acct = task->account;
      storage = pool_.allocate(ext, acct);
      renamed = true;
      // Bytes the new version must inherit from the predecessor: everything
      // for an inout (the body starts from the old value), the tail beyond
      // the declared write for a shrinking out.
      const std::size_t keep_lo = also_reads ? 0 : bytes;
      if (keep_lo < old_ext) {
        if (!also_reads && !available_to(task, v)) {
          // The inherited tail is a true dependence on the old producer even
          // though the body itself never reads it.
          add_edge(sh, v->producer(), task, EdgeKind::True);
        }
        // Register as reader (keeps the old version's storage alive until
        // this task completes) and schedule the byte copy.
        v->register_reader(task);
        task->reads.push_back(v);
        if (v->storage() == e.user_ptr) {
          e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
          task->user_pending_slots.push_back(&e.user_storage_pending);
        }
        task->copy_ins.push_back(
            CopyIn{static_cast<const char*>(v->storage()) + keep_lo,
                   static_cast<char*>(storage) + keep_lo, old_ext - keep_lo});
        ++sh.counters.copy_ins;
        sh.counters.copy_in_bytes += old_ext - keep_lo;
      }
      if (also_reads && ext > old_ext) {
        // Growing inout: bytes [old_ext, ext) were never written by any
        // task, so the body's initial value for them is the program's own
        // storage. Reading it at task start needs the same quiescence
        // accounting as any other user-storage access.
        e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
        task->user_pending_slots.push_back(&e.user_storage_pending);
        task->copy_ins.push_back(
            CopyIn{static_cast<const char*>(e.user_ptr) + old_ext,
                   static_cast<char*>(storage) + old_ext, ext - old_ext});
        ++sh.counters.copy_ins;
        sh.counters.copy_in_bytes += ext - old_ext;
      }
    }
  } else {
    // No-renaming ablation: everything stays in the user's storage and the
    // hazards the paper eliminates become explicit graph edges. Ancestor
    // accesses are exempt for the same scoping reason as above. The merge
    // invariant is trivial here — all writes land in user storage.
    if (!available_to(task, v)) {
      add_edge(sh, v->producer(), task, EdgeKind::Output);
    }
    for (TaskNode* r : v->reader_tasks()) {
      if (r != task && !r->finished_hint() && !task->has_ancestor(r)) {
        add_edge(sh, r, task, EdgeKind::Anti);
      }
    }
    storage = v->storage();
    renamed = false;
    v->disown_storage();
  }

  auto* v2 = new Version(&e, storage, ext, renamed, task, acct);
  e.latest = v2;
  v->release(pool_);  // drop the superseded version's latest-token
  task->produces.push_back(v2);
  if (storage == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  return storage;
}

void DependencyAnalyzer::flush_all() {
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    Shard& sh = shards_[s];
    std::lock_guard<std::mutex> lk(sh.mu);
    for (auto& [addr, e] : sh.entries) {
      Version* v = e.latest;
      SMPSS_ASSERT(v->is_produced());
      SMPSS_ASSERT(v->readers_pending() == 0);
      // The merged-extent invariant copy-back correctness rests on.
      SMPSS_ASSERT(v->bytes() == e.bytes);
      if (v->storage() != e.user_ptr) {
        std::memcpy(e.user_ptr, v->storage(), v->bytes());
        sh.counters.copyback_bytes += v->bytes();
      }
      v->release(pool_);
    }
    sh.entries.clear();
  }
}

DataEntry* DependencyAnalyzer::find(const void* addr) {
  Shard& sh = shard_for(addr);
  auto it = sh.entries.find(addr);
  return it == sh.entries.end() ? nullptr : &it->second;
}

void DependencyAnalyzer::copy_back_latest(DataEntry& entry) {
  Version* v = entry.latest;
  SMPSS_ASSERT(v->is_produced());
  SMPSS_ASSERT(v->bytes() == entry.bytes);
  if (v->storage() != entry.user_ptr) {
    std::memcpy(entry.user_ptr, v->storage(), v->bytes());
    shard_for(entry.user_ptr).counters.copyback_bytes += v->bytes();
  }
}

DependencyAnalyzer::Counters DependencyAnalyzer::counters_snapshot(
    bool lock) const {
  Counters out;
  for (unsigned s = 0; s <= shard_mask_; ++s) {
    const Shard& sh = shards_[s];
    if (lock) {
      std::lock_guard<std::mutex> lk(sh.mu);
      out += sh.counters;
    } else {
      out += sh.counters;
    }
  }
  return out;
}

}  // namespace smpss
