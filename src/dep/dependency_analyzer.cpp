#include "dep/dependency_analyzer.hpp"

#include <cstring>

namespace smpss {

namespace {
/// Nested-task scoping rule: a version counts as available to `task` when it
/// is produced, has no producer (initial data), or its producer is `task`
/// itself or one of `task`'s ancestors. An ancestor is mid-execution — its
/// working copy holds exactly the value the child is meant to operate on —
/// and an ancestor→descendant edge would deadlock against taskwait(). The
/// contract this implies: data a child task touches must be covered by an
/// ancestor's footprint (or be subtree-private), and no outside task may be
/// submitted against it while the subtree is active.
bool available_to(const TaskNode* task, const Version* v) {
  const TaskNode* prod = v->producer();
  return prod == nullptr || v->is_produced() || prod == task ||
         task->has_ancestor(prod);
}
}  // namespace

DependencyAnalyzer::~DependencyAnalyzer() {
  // Normal shutdown goes through flush_all() after a barrier; this handles
  // abandoned runtimes without leaking versions.
  for (auto& [addr, e] : entries_) {
    if (e.latest) e.latest->release(pool_);
  }
}

DataEntry& DependencyAnalyzer::entry_for(void* addr, std::size_t bytes) {
  auto [it, inserted] = entries_.try_emplace(addr);
  DataEntry& e = it->second;
  if (inserted) {
    e.user_ptr = addr;
    e.bytes = bytes;
    // Initial version: the program's own storage, already "produced".
    e.latest = new Version(&e, addr, bytes, /*renamed=*/false,
                           /*producer=*/nullptr);
    ++counters_.tracked_objects;
  } else if (bytes > e.bytes) {
    e.bytes = bytes;
  }
  return e;
}

void DependencyAnalyzer::add_edge(TaskNode* pred, TaskNode* succ,
                                  EdgeKind kind) {
  SMPSS_ASSERT(pred != succ);
  if (!pred->add_successor(succ)) return;  // predecessor already completed
  switch (kind) {
    case EdgeKind::True: ++counters_.raw_edges; break;
    case EdgeKind::Anti: ++counters_.war_edges; break;
    case EdgeKind::Output: ++counters_.waw_edges; break;
  }
  if (recorder_) recorder_->record_edge(pred->seq, succ->seq, kind);
}

void* DependencyAnalyzer::process(TaskNode* task, const AccessDesc& access) {
  SMPSS_ASSERT(!access.has_region);  // region accesses go to RegionAnalyzer
  ++counters_.accesses;
  DataEntry& e = entry_for(access.addr, access.bytes);
  switch (access.dir) {
    case Dir::In:
      return process_read(task, e, access.bytes);
    case Dir::Out:
      return process_write(task, e, access.bytes, /*also_reads=*/false);
    case Dir::InOut:
      return process_write(task, e, access.bytes, /*also_reads=*/true);
  }
  return nullptr;  // unreachable
}

void* DependencyAnalyzer::process_read(TaskNode* task, DataEntry& e,
                                       std::size_t bytes) {
  Version* v = e.latest;
  SMPSS_CHECK(!v->renamed() || bytes <= v->bytes(),
              "task declares a larger input size than the renamed version "
              "holds — inconsistent parameter sizes on one datum");
  if (!available_to(task, v)) {
    add_edge(v->producer(), task, EdgeKind::True);
  }
  v->register_reader(task);
  task->reads.push_back(v);
  if (v->storage() == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  return v->storage();
}

void* DependencyAnalyzer::process_write(TaskNode* task, DataEntry& e,
                                        std::size_t bytes, bool also_reads) {
  Version* v = e.latest;

  if (also_reads && !available_to(task, v)) {
    add_edge(v->producer(), task, EdgeKind::True);  // RAW on the old value
  }

  void* storage = nullptr;
  bool renamed = false;

  if (renaming_) {
    // Renaming configuration: never block on WAR/WAW — either reuse the old
    // version's bytes in place when nothing else will touch them, or move
    // the new version to fresh aligned storage. An old version produced by
    // an ancestor counts as produced (see available_to): the child writes
    // inside the ancestor's access, so reusing its bytes is the coherent
    // choice, not a hazard.
    const bool others_reading = v->readers_pending() > 0;
    const bool old_unproduced = !available_to(task, v);
    const bool hazard = also_reads ? others_reading
                                   : (others_reading || old_unproduced);
    if (!hazard) {
      storage = v->storage();
      renamed = v->renamed();
      v->disown_storage();  // ownership moves to the new version
      ++counters_.in_place_reuses;
    } else {
      storage = pool_.allocate(bytes);
      renamed = true;
      if (also_reads) {
        // The body starts from the old value: register as reader (keeps the
        // old version's storage alive) and schedule the byte copy.
        v->register_reader(task);
        task->reads.push_back(v);
        if (v->storage() == e.user_ptr) {
          e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
          task->user_pending_slots.push_back(&e.user_storage_pending);
        }
        task->copy_ins.push_back(CopyIn{v->storage(), storage, bytes});
        ++counters_.copy_ins;
        counters_.copy_in_bytes += bytes;
      }
    }
  } else {
    // No-renaming ablation: everything stays in the user's storage and the
    // hazards the paper eliminates become explicit graph edges. Ancestor
    // accesses are exempt for the same scoping reason as above.
    if (!available_to(task, v)) {
      add_edge(v->producer(), task, EdgeKind::Output);
    }
    for (TaskNode* r : v->reader_tasks()) {
      if (r != task && !r->finished_hint() && !task->has_ancestor(r)) {
        add_edge(r, task, EdgeKind::Anti);
      }
    }
    storage = v->storage();
    renamed = false;
    v->disown_storage();
  }

  auto* v2 = new Version(&e, storage, bytes, renamed, task);
  e.latest = v2;
  v->release(pool_);  // drop the superseded version's latest-token
  task->produces.push_back(v2);
  if (storage == e.user_ptr) {
    e.user_storage_pending.fetch_add(1, std::memory_order_relaxed);
    task->user_pending_slots.push_back(&e.user_storage_pending);
  }
  return storage;
}

void DependencyAnalyzer::flush_all() {
  for (auto& [addr, e] : entries_) {
    Version* v = e.latest;
    SMPSS_ASSERT(v->is_produced());
    SMPSS_ASSERT(v->readers_pending() == 0);
    if (v->storage() != e.user_ptr) {
      std::memcpy(e.user_ptr, v->storage(), v->bytes());
      counters_.copyback_bytes += v->bytes();
    }
    v->release(pool_);
  }
  entries_.clear();
}

DataEntry* DependencyAnalyzer::find(const void* addr) {
  auto it = entries_.find(addr);
  return it == entries_.end() ? nullptr : &it->second;
}

void DependencyAnalyzer::copy_back_latest(DataEntry& entry) {
  Version* v = entry.latest;
  SMPSS_ASSERT(v->is_produced());
  if (v->storage() != entry.user_ptr) {
    std::memcpy(entry.user_ptr, v->storage(), v->bytes());
    counters_.copyback_bytes += v->bytes();
  }
}

}  // namespace smpss
