// Tuned kernels: register tiling, restrict-qualified pointers, loop orders
// chosen for contiguous vector loads — the "Goto tiles" curve. Blocks at the
// paper's sweet-spot sizes (128..512) fit in L2, so packing is unnecessary;
// register blocking plus vectorization-friendly inner loops captures most of
// the single-core gap between a naive nest and a tuned BLAS.
#include <cmath>

#include "blas/kernels.hpp"

namespace smpss::blas {
namespace {

#define RESTRICT __restrict__

// C -= A * B^T. NT form is dot products of rows of A with rows of B; tile
// 4x2 output registers so each loaded vector of A/B is reused.
void tuned_gemm_nt_minus(int m, const float* RESTRICT a,
                         const float* RESTRICT b, float* RESTRICT c) {
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    const float *a0 = a + (i + 0) * m, *a1 = a + (i + 1) * m,
                *a2 = a + (i + 2) * m, *a3 = a + (i + 3) * m;
    int j = 0;
    for (; j + 2 <= m; j += 2) {
      const float *b0 = b + (j + 0) * m, *b1 = b + (j + 1) * m;
      float s00 = 0, s01 = 0, s10 = 0, s11 = 0;
      float s20 = 0, s21 = 0, s30 = 0, s31 = 0;
      for (int k = 0; k < m; ++k) {
        float bk0 = b0[k], bk1 = b1[k];
        s00 += a0[k] * bk0; s01 += a0[k] * bk1;
        s10 += a1[k] * bk0; s11 += a1[k] * bk1;
        s20 += a2[k] * bk0; s21 += a2[k] * bk1;
        s30 += a3[k] * bk0; s31 += a3[k] * bk1;
      }
      c[(i + 0) * m + j] -= s00; c[(i + 0) * m + j + 1] -= s01;
      c[(i + 1) * m + j] -= s10; c[(i + 1) * m + j + 1] -= s11;
      c[(i + 2) * m + j] -= s20; c[(i + 2) * m + j + 1] -= s21;
      c[(i + 3) * m + j] -= s30; c[(i + 3) * m + j + 1] -= s31;
    }
    for (; j < m; ++j) {
      const float* bj = b + j * m;
      float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (int k = 0; k < m; ++k) {
        s0 += a0[k] * bj[k]; s1 += a1[k] * bj[k];
        s2 += a2[k] * bj[k]; s3 += a3[k] * bj[k];
      }
      c[(i + 0) * m + j] -= s0; c[(i + 1) * m + j] -= s1;
      c[(i + 2) * m + j] -= s2; c[(i + 3) * m + j] -= s3;
    }
  }
  for (; i < m; ++i) {
    const float* ai = a + i * m;
    for (int j = 0; j < m; ++j) {
      const float* bj = b + j * m;
      float s = 0;
      for (int k = 0; k < m; ++k) s += ai[k] * bj[k];
      c[i * m + j] -= s;
    }
  }
}

// C += A * B. ikj (axpy) form: the inner loop streams rows of B and C with
// unit stride; k unrolled by 4 to feed the vector units.
void tuned_gemm_nn_acc(int m, const float* RESTRICT a, const float* RESTRICT b,
                       float* RESTRICT c) {
  for (int i = 0; i < m; ++i) {
    float* RESTRICT ci = c + i * m;
    int k = 0;
    for (; k + 4 <= m; k += 4) {
      float aik0 = a[i * m + k], aik1 = a[i * m + k + 1];
      float aik2 = a[i * m + k + 2], aik3 = a[i * m + k + 3];
      const float *b0 = b + k * m, *b1 = b + (k + 1) * m;
      const float *b2 = b + (k + 2) * m, *b3 = b + (k + 3) * m;
      for (int j = 0; j < m; ++j)
        ci[j] += aik0 * b0[j] + aik1 * b1[j] + aik2 * b2[j] + aik3 * b3[j];
    }
    for (; k < m; ++k) {
      float aik = a[i * m + k];
      const float* bk = b + k * m;
      for (int j = 0; j < m; ++j) ci[j] += aik * bk[j];
    }
  }
}

void tuned_syrk_ln_minus(int m, const float* RESTRICT a, float* RESTRICT c) {
  int i = 0;
  for (; i + 2 <= m; i += 2) {
    const float *a0 = a + i * m, *a1 = a + (i + 1) * m;
    for (int j = 0; j <= i + 1; ++j) {
      const float* aj = a + j * m;
      float s0 = 0, s1 = 0;
      for (int k = 0; k < m; ++k) {
        s0 += a0[k] * aj[k];
        s1 += a1[k] * aj[k];
      }
      if (j <= i) c[i * m + j] -= s0;
      c[(i + 1) * m + j] -= s1;
    }
  }
  for (; i < m; ++i) {
    const float* ai = a + i * m;
    for (int j = 0; j <= i; ++j) {
      const float* aj = a + j * m;
      float s = 0;
      for (int k = 0; k < m; ++k) s += ai[k] * aj[k];
      c[i * m + j] -= s;
    }
  }
}

void tuned_trsm_rltn(int m, const float* RESTRICT l, float* RESTRICT x) {
  // Two rows of X per pass share each loaded row of L.
  int i = 0;
  for (; i + 2 <= m; i += 2) {
    float *x0 = x + i * m, *x1 = x + (i + 1) * m;
    for (int j = 0; j < m; ++j) {
      const float* lj = l + j * m;
      float s0 = x0[j], s1 = x1[j];
      for (int k = 0; k < j; ++k) {
        s0 -= x0[k] * lj[k];
        s1 -= x1[k] * lj[k];
      }
      float inv = 1.0f / lj[j];
      x0[j] = s0 * inv;
      x1[j] = s1 * inv;
    }
  }
  for (; i < m; ++i) {
    float* xi = x + i * m;
    for (int j = 0; j < m; ++j) {
      const float* lj = l + j * m;
      float s = xi[j];
      for (int k = 0; k < j; ++k) s -= xi[k] * lj[k];
      xi[j] = s / lj[j];
    }
  }
}

int tuned_potrf_ln(int m, float* RESTRICT a) {
  for (int k = 0; k < m; ++k) {
    float d = a[k * m + k];
    if (!(d > 0.0f)) return k + 1;
    d = std::sqrt(d);
    a[k * m + k] = d;
    float inv = 1.0f / d;
    for (int i = k + 1; i < m; ++i) a[i * m + k] *= inv;
    for (int j = k + 1; j < m; ++j) {
      float ljk = a[j * m + k];
      for (int i = j; i < m; ++i) a[i * m + j] -= a[i * m + k] * ljk;
    }
  }
  return 0;
}

void tuned_add(int m, const float* RESTRICT a, const float* RESTRICT b,
               float* RESTRICT c) {
  for (int i = 0; i < m * m; ++i) c[i] = a[i] + b[i];
}

void tuned_sub(int m, const float* RESTRICT a, const float* RESTRICT b,
               float* RESTRICT c) {
  for (int i = 0; i < m * m; ++i) c[i] = a[i] - b[i];
}

#undef RESTRICT

}  // namespace

const Kernels& tuned_kernels() noexcept {
  static const Kernels k{"tuned",           tuned_gemm_nt_minus,
                         tuned_gemm_nn_acc, tuned_syrk_ln_minus,
                         tuned_trsm_rltn,   tuned_potrf_ln,
                         tuned_add,         tuned_sub};
  return k;
}

}  // namespace smpss::blas
