#include "blas/threaded_blas.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "common/aligned_alloc.hpp"
#include "common/check.hpp"

namespace smpss::blas {

namespace {

/// Gather a bs x bs tile of a flat matrix into contiguous storage.
void pack_tile(int n, const float* a, int i0, int j0, int bs, float* tile) {
  for (int i = 0; i < bs; ++i)
    std::memcpy(tile + i * bs, a + (i0 + i) * n + j0,
                sizeof(float) * static_cast<std::size_t>(bs));
}

/// Scatter a contiguous tile back into a flat matrix.
void unpack_tile(int n, float* a, int i0, int j0, int bs, const float* tile) {
  for (int i = 0; i < bs; ++i)
    std::memcpy(a + (i0 + i) * n + j0, tile + i * bs,
                sizeof(float) * static_cast<std::size_t>(bs));
}

struct TileBuf {
  explicit TileBuf(int bs)
      : p(static_cast<float*>(aligned_alloc_bytes(
            sizeof(float) * static_cast<std::size_t>(bs) * bs, 64))) {}
  ~TileBuf() { aligned_free_bytes(p); }
  TileBuf(const TileBuf&) = delete;
  TileBuf& operator=(const TileBuf&) = delete;
  float* p;
};

}  // namespace

void ThreadedBlas::gemm_nn_acc_flat(int n, const float* a, const float* b,
                                    float* c) {
  const unsigned nt = pool_.size();
  // Row-panel decomposition: contiguous chunks, one per thread, processed in
  // k-strips for cache reuse of b.
  pool_.run([&](unsigned tid) {
    int rows_per = (n + static_cast<int>(nt) - 1) / static_cast<int>(nt);
    int r0 = static_cast<int>(tid) * rows_per;
    int r1 = std::min(n, r0 + rows_per);
    constexpr int kStrip = 64;
    for (int i = r0; i < r1; ++i) {
      float* ci = c + static_cast<std::size_t>(i) * n;
      for (int k0 = 0; k0 < n; k0 += kStrip) {
        int k1 = std::min(n, k0 + kStrip);
        for (int k = k0; k < k1; ++k) {
          float aik = a[static_cast<std::size_t>(i) * n + k];
          const float* bk = b + static_cast<std::size_t>(k) * n;
          for (int j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  });
}

int ThreadedBlas::potrf_ln_flat(int n, float* a, int bs) {
  SMPSS_CHECK(n % bs == 0, "block size must divide the matrix size");
  const int nb = n / bs;
  std::atomic<int> info{0};

  // Right-looking: factorize panel k (serial potrf + parallel trsm), then
  // update the trailing submatrix in parallel; barrier between every phase.
  for (int k = 0; k < nb; ++k) {
    {
      // Serial diagonal factorization — the Amdahl bottleneck.
      TileBuf diag(bs);
      pack_tile(n, a, k * bs, k * bs, bs, diag.p);
      int rc = kernels_.potrf_ln(bs, diag.p);
      if (rc != 0) return rc;
      unpack_tile(n, a, k * bs, k * bs, bs, diag.p);
    }

    if (k + 1 < nb) {
      // Parallel panel solve: rows i in (k, nb) get A[i][k] <- A[i][k] L^-T.
      pool_.run([&](unsigned tid) {
        TileBuf diag(bs), tile(bs);
        pack_tile(n, a, k * bs, k * bs, bs, diag.p);
        for (int i = k + 1 + static_cast<int>(tid); i < nb;
             i += static_cast<int>(pool_.size())) {
          pack_tile(n, a, i * bs, k * bs, bs, tile.p);
          kernels_.trsm_rltn(bs, diag.p, tile.p);
          unpack_tile(n, a, i * bs, k * bs, bs, tile.p);
        }
      });

      // Parallel trailing update: blocks (i, j), k < j <= i < nb.
      pool_.run([&](unsigned tid) {
        TileBuf ai(bs), aj(bs), cij(bs);
        // Flatten the triangular iteration space and deal it round-robin.
        int idx = 0;
        for (int i = k + 1; i < nb; ++i) {
          for (int j = k + 1; j <= i; ++j, ++idx) {
            if (idx % static_cast<int>(pool_.size()) !=
                static_cast<int>(tid))
              continue;
            pack_tile(n, a, i * bs, k * bs, bs, ai.p);
            pack_tile(n, a, i * bs, j * bs, bs, cij.p);
            if (i == j) {
              kernels_.syrk_ln_minus(bs, ai.p, cij.p);
            } else {
              pack_tile(n, a, j * bs, k * bs, bs, aj.p);
              kernels_.gemm_nt_minus(bs, ai.p, aj.p, cij.p);
            }
            unpack_tile(n, a, i * bs, j * bs, bs, cij.p);
          }
        }
      });
    }
  }
  return info.load();
}

}  // namespace smpss::blas
