// Reference kernels: textbook loop nests with no tiling or restrict
// annotations. Deliberately the slower of the two variants (the "MKL tiles"
// curve of Figs. 8/11/12/13); correctness oracle for the tuned kernels.
#include <cmath>

#include "blas/kernels.hpp"

namespace smpss::blas {
namespace {

void ref_gemm_nt_minus(int m, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < m; ++k) acc += a[i * m + k] * b[j * m + k];
      c[i * m + j] -= acc;
    }
}

void ref_gemm_nn_acc(int m, const float* a, const float* b, float* c) {
  // Dot-product form: strided walks over b, the classic untuned pattern.
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < m; ++k) acc += a[i * m + k] * b[k * m + j];
      c[i * m + j] += acc;
    }
}

void ref_syrk_ln_minus(int m, const float* a, float* c) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j <= i; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < m; ++k) acc += a[i * m + k] * a[j * m + k];
      c[i * m + j] -= acc;
    }
}

void ref_trsm_rltn(int m, const float* l, float* x) {
  // Solve X_new * L^T = X row by row (forward substitution per row).
  for (int i = 0; i < m; ++i) {
    float* xi = x + i * m;
    for (int j = 0; j < m; ++j) {
      float acc = xi[j];
      for (int k = 0; k < j; ++k) acc -= xi[k] * l[j * m + k];
      xi[j] = acc / l[j * m + j];
    }
  }
}

int ref_potrf_ln(int m, float* a) {
  for (int k = 0; k < m; ++k) {
    float d = a[k * m + k];
    if (!(d > 0.0f)) return k + 1;  // catches NaN as well
    d = std::sqrt(d);
    a[k * m + k] = d;
    float inv = 1.0f / d;
    for (int i = k + 1; i < m; ++i) a[i * m + k] *= inv;
    for (int j = k + 1; j < m; ++j) {
      float ljk = a[j * m + k];
      for (int i = j; i < m; ++i) a[i * m + j] -= a[i * m + k] * ljk;
    }
  }
  return 0;
}

void ref_add(int m, const float* a, const float* b, float* c) {
  for (int i = 0; i < m * m; ++i) c[i] = a[i] + b[i];
}

void ref_sub(int m, const float* a, const float* b, float* c) {
  for (int i = 0; i < m * m; ++i) c[i] = a[i] - b[i];
}

}  // namespace

const Kernels& ref_kernels() noexcept {
  static const Kernels k{"ref",          ref_gemm_nt_minus, ref_gemm_nn_acc,
                         ref_syrk_ln_minus, ref_trsm_rltn,  ref_potrf_ln,
                         ref_add,        ref_sub};
  return k;
}

const Kernels& kernels(Variant v) noexcept {
  return v == Variant::Ref ? ref_kernels() : tuned_kernels();
}

const char* to_string(Variant v) noexcept {
  return v == Variant::Ref ? "ref" : "tuned";
}

}  // namespace smpss::blas
