// Threaded-BLAS baselines — the "Threaded Goto" / "Threaded MKL" curves of
// Figs. 11 and 12.
//
// GEMM is parallelized over independent row panels: embarrassingly parallel,
// so it scales smoothly with thread count, like the vendor libraries in
// Fig. 12. Cholesky is the classic bulk-synchronous right-looking blocked
// factorization: the panel factorization serializes and every step ends in
// a barrier. That is precisely the dependency-unaware structure whose
// scaling the paper shows flattening ("the MKL parallelization does not
// scale beyond 4 processors and the Goto parallelization does not scale
// beyond 10 [...] we suspect their implementations are limited by
// [dependency complexity]").
#pragma once

#include <cstddef>

#include "blas/kernels.hpp"
#include "common/thread_pool.hpp"

namespace smpss::blas {

class ThreadedBlas {
 public:
  ThreadedBlas(unsigned nthreads, Variant variant)
      : pool_(nthreads), kernels_(kernels(variant)) {}

  unsigned nthreads() const noexcept { return pool_.size(); }

  /// C += A * B on flat row-major n x n matrices; row panels distributed
  /// over the pool, each panel processed in cache-sized tiles.
  void gemm_nn_acc_flat(int n, const float* a, const float* b, float* c);

  /// In-place lower Cholesky of a flat row-major n x n matrix with block
  /// size `bs` (must divide n). Returns 0 on success, nonzero if a pivot
  /// failed. Bulk-synchronous right-looking algorithm.
  int potrf_ln_flat(int n, float* a, int bs);

 private:
  ThreadPool pool_;
  const Kernels& kernels_;
};

}  // namespace smpss::blas
