// Single-threaded BLAS-like block kernels — the tile implementations of the
// paper's experiments.
//
// The paper implements its linear-algebra tasks "using highly tuned BLAS
// libraries": non-threaded Goto BLAS 1.20 and non-threaded MKL 9.1. Neither
// is available offline, so we provide two of our own variants that preserve
// the experiments' two-curve structure:
//
//   Variant::Ref    plain loop nests            (plays the "MKL tiles" role)
//   Variant::Tuned  register-tiled, restrict-   (plays the "Goto tiles" role)
//                   qualified, vectorizer-friendly
//
// All kernels operate on dense row-major m x m blocks. Naming follows BLAS:
// nt = A * B^T, nn = A * B, l = lower triangular, r = right side.
#pragma once

namespace smpss::blas {

/// Kernel bundle used as the task bodies of the linear-algebra apps.
struct Kernels {
  const char* name;

  /// C -= A * B^T (the Cholesky trailing update: sgemm_t of Fig. 2/4).
  void (*gemm_nt_minus)(int m, const float* a, const float* b, float* c);

  /// C += A * B (the hyper-matrix multiplication: sgemm_t of Fig. 1).
  void (*gemm_nn_acc)(int m, const float* a, const float* b, float* c);

  /// C(lower) -= A * A^T (ssyrk_t of Fig. 2/4; only the lower triangle of C
  /// is written, as the subsequent spotrf_t only reads the lower triangle).
  void (*syrk_ln_minus)(int m, const float* a, float* c);

  /// X <- X * L^-T with L lower triangular (strsm_t of Fig. 2/4).
  void (*trsm_rltn)(int m, const float* l, float* x);

  /// In-place lower Cholesky factorization of a block (spotrf_t). Returns 0
  /// on success, or 1 + the index of the first non-positive pivot.
  int (*potrf_ln)(int m, float* a);

  /// C = A + B and C = A - B (Strassen's block additions).
  void (*add)(int m, const float* a, const float* b, float* c);
  void (*sub)(int m, const float* a, const float* b, float* c);
};

enum class Variant { Ref, Tuned };

const Kernels& ref_kernels() noexcept;
const Kernels& tuned_kernels() noexcept;
const Kernels& kernels(Variant v) noexcept;
const char* to_string(Variant v) noexcept;

}  // namespace smpss::blas
