// Ablation — array regions vs. representants (paper Sec. V).
//
// The paper proposes region specifiers but ships representants as the
// workaround. On multisort the difference is concrete: representants bind
// dependencies to whole sort-tree nodes, so a merge waits for its entire
// child subtrees and runs as ONE task; regions let the runtime see partial
// overlap, so merges split into output chunks that start as soon as both
// input runs exist, and the merge levels pipeline. Same program, same
// data — only the dependency language changes.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/multisort.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "common/rng.hpp"

namespace {

using namespace smpss;
using apps::ELM;

constexpr long kN = 1L << 21;
constexpr long kQuick = 1 << 14;
constexpr long kMerge = 1 << 13;

const std::vector<ELM>& input_data() {
  static std::vector<ELM> data = [] {
    Xoshiro256 rng(7);
    std::vector<ELM> v(kN);
    for (auto& x : v) x = static_cast<ELM>(rng.next());
    return v;
  }();
  return data;
}

void BM_Regions(benchmark::State& state) {
  std::uint64_t region_accesses = 0, tasks = 0;
  for (auto _ : state) {
    auto data = input_data();
    std::vector<ELM> tmp(data.size());
    Runtime rt;
    auto tt = apps::MultisortTasks::register_in(rt);
    auto t0 = now_ns();
    apps::multisort_smpss_regions(rt, tt, data.data(), tmp.data(), kN, kQuick,
                                  kMerge);
    state.SetIterationTime(seconds_between(t0, now_ns()));
    region_accesses = rt.stats().region_accesses;
    tasks = rt.stats().tasks_spawned;
  }
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["region_accesses"] = static_cast<double>(region_accesses);
}
BENCHMARK(BM_Regions)->Name("Ablation/Multisort/regions")
    ->Unit(benchmark::kMillisecond)->UseManualTime();

void BM_Representants(benchmark::State& state) {
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    auto data = input_data();
    std::vector<ELM> tmp(data.size());
    Runtime rt;
    auto tt = apps::MultisortTasks::register_in(rt);
    auto t0 = now_ns();
    apps::multisort_smpss_repr(rt, tt, data.data(), tmp.data(), kN, kQuick);
    state.SetIterationTime(seconds_between(t0, now_ns()));
    tasks = rt.stats().tasks_spawned;
  }
  state.counters["tasks"] = static_cast<double>(tasks);
}
BENCHMARK(BM_Representants)->Name("Ablation/Multisort/representants")
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
