// Fig. 15 — "Performance of N Queens varying the number of processors",
// speedup vs. the sequential version (the honest sequential version with a
// single solution array — "a sequential version should not contain
// artifacts necessary for a parallel paradigm").
//
// Expected shape: all three parallel models scale; the fj/omp3 versions pay
// for their per-task manual board copies at every node while SMPSs's
// runtime-renamed copies are made only when a hazard requires one.
#include <benchmark/benchmark.h>

#include <mutex>

#include "apps/nqueens.hpp"
#include "baselines/omp_real/omp_tasks.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"

namespace {

using namespace smpss;

constexpr int kN = 13;
constexpr int kDepth = 10;

double sequential_seconds() {
  static std::once_flag flag;
  static double secs = 0.0;
  std::call_once(flag, [] {
    auto t0 = now_ns();
    benchmark::DoNotOptimize(apps::nqueens_seq(kN));
    secs = seconds_between(t0, now_ns());
  });
  return secs;
}

template <typename RunFn>
void run_bench(benchmark::State& state, RunFn&& run) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  double total = 0.0;
  long count = 0;
  for (auto _ : state) {
    auto t0 = now_ns();
    count = run(threads);
    total += seconds_between(t0, now_ns());
  }
  double mean = total / static_cast<double>(state.iterations());
  state.counters["speedup_vs_seq"] = sequential_seconds() / mean;
  state.counters["threads"] = threads;
  state.counters["solutions"] = static_cast<double>(count);
}

void BM_NQueensSmpss(benchmark::State& state) {
  run_bench(state, [](unsigned threads) {
    Config cfg;
    cfg.num_threads = threads;
    Runtime rt(cfg);
    auto tt = apps::NQueensTasks::register_in(rt);
    return apps::nqueens_smpss(rt, tt, kN, kDepth);
  });
}

void BM_NQueensForkJoin(benchmark::State& state) {
  run_bench(state, [](unsigned threads) {
    fj::Scheduler s(threads);
    return apps::nqueens_fj(s, kN, kDepth);
  });
}

void BM_NQueensTaskPool(benchmark::State& state) {
  run_bench(state, [](unsigned threads) {
    omp3::TaskPool p(threads);
    return apps::nqueens_omp3(p, kN, kDepth);
  });
}

BENCHMARK(BM_NQueensSmpss)
    ->Name("Fig15/SMPSs")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_NQueensForkJoin)
    ->Name("Fig15/Cilk-like")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_NQueensTaskPool)
    ->Name("Fig15/OMP3-like")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_NQueensOmpReal(benchmark::State& state) {
  if (!ompreal::available()) {
    state.SkipWithError("built without OpenMP");
    return;
  }
  run_bench(state, [](unsigned threads) {
    return ompreal::nqueens(kN, kDepth, threads);
  });
}
BENCHMARK(BM_NQueensOmpReal)
    ->Name("Fig15/OpenMP-real")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
