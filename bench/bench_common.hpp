// Shared helpers for the figure-reproduction benches. Sizes are scaled to a
// single laptop/server-class node (the paper ran 8192^2 matrices on a
// 32-core Altix; the *shapes* of the curves are what we reproduce). Override
// the problem size with SMPSS_BENCH_SCALE=2 (doubles n) where supported.
#pragma once

#include <benchmark/benchmark.h>

#include <vector>

#include "common/affinity.hpp"
#include "common/env.hpp"

namespace smpss::benchutil {

/// Thread counts mirroring the paper's x-axes (1..32), clipped to this
/// machine.
inline std::vector<long> thread_axis() {
  const long hw = static_cast<long>(hardware_concurrency());
  std::vector<long> axis;
  for (long t : {1L, 2L, 4L, 8L, 12L, 16L, 24L, 32L})
    if (t <= hw) axis.push_back(t);
  if (axis.empty() || axis.back() != hw) axis.push_back(hw);
  return axis;
}

inline void apply_thread_axis(benchmark::internal::Benchmark* b) {
  for (long t : thread_axis()) b->Arg(t);
}

/// Problem-size multiplier from the environment (1 = default).
inline int bench_scale() {
  if (auto v = env_int("SMPSS_BENCH_SCALE"); v && *v >= 1 && *v <= 8)
    return static_cast<int>(*v);
  return 1;
}

}  // namespace smpss::benchutil
