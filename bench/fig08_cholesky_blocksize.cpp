// Fig. 8 — "Performance of Cholesky on the Altix with 32 cores using
// matrices of 8192x8192 single precision floats and varying the block size."
//
// Series: SMPSs + tuned tiles (the "Goto" role) and SMPSs + reference tiles
// (the "MKL" role), block sizes 32..1024, all cores. Expected shape, as in
// the paper: small blocks lose to per-task runtime overhead, mid sizes
// (128..512) form a plateau of good performance, oversized blocks lose
// parallelism and fall off.
#include <benchmark/benchmark.h>

#include "apps/cholesky.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

constexpr int kBaseN = 2048;  // scaled stand-in for the paper's 8192

template <blas::Variant V>
void BM_CholeskyBlockSize(benchmark::State& state) {
  const int bs = static_cast<int>(state.range(0));
  const int n = kBaseN * benchutil::bench_scale();
  if (n % bs != 0) {
    state.SkipWithError("block size must divide n");
    return;
  }
  FlatMatrix a0(n);
  fill_spd(a0, 8);
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    // Setup and teardown (runtime construction, block copies, thread joins)
    // are excluded via manual timing: only the factorization is measured.
    HyperMatrix h(n / bs, bs, true);
    blocked_from_flat(h, a0.data());
    Runtime rt;  // all cores, like the paper's fixed 32
    auto tt = apps::CholeskyTasks::register_in(rt);
    auto t0 = now_ns();
    int rc = apps::cholesky_smpss_hyper(rt, tt, h, blas::kernels(V));
    state.SetIterationTime(seconds_between(t0, now_ns()));
    if (rc != 0) state.SkipWithError("factorization failed");
    tasks = rt.stats().tasks_spawned;
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::cholesky_flops(n), benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["block"] = bs;
}

BENCHMARK(BM_CholeskyBlockSize<blas::Variant::Tuned>)
    ->Name("Fig08/SMPSs+tuned_tiles")
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

BENCHMARK(BM_CholeskyBlockSize<blas::Variant::Ref>)
    ->Name("Fig08/SMPSs+ref_tiles")
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
