// Ablation — renaming on/off.
//
// The paper claims renaming "leav[es] only the true dependencies" and calls
// Strassen "an intensive renaming test case" and N-Queens a case where "the
// runtime takes care of [array duplication] by renaming". This bench
// quantifies both: with renaming disabled, WAR/WAW hazards become graph
// edges, the reused Strassen temporaries serialize the seven products, and
// the N-Queens set/solve overlap disappears.
#include <benchmark/benchmark.h>

#include "apps/nqueens.hpp"
#include "apps/strassen.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

void BM_StrassenRenaming(benchmark::State& state) {
  const bool renaming = state.range(0) != 0;
  const int nb = 4, m = 192;
  const int n = nb * m;
  FlatMatrix a(n), b(n);
  fill_random(a, 3);
  fill_random(b, 4);
  HyperMatrix ha(nb, m, true), hb(nb, m, true);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  std::uint64_t renames = 0, hazard_edges = 0;
  for (auto _ : state) {
    HyperMatrix hc(nb, m, true);
    Config cfg;
    cfg.renaming = renaming;
    Runtime rt(cfg);
    auto tt = apps::StrassenTasks::register_in(rt);
    auto t0 = now_ns();
    apps::strassen_smpss(rt, tt, ha, hb, hc, blas::tuned_kernels());
    state.SetIterationTime(seconds_between(t0, now_ns()));
    renames = rt.stats().renames;
    hazard_edges = rt.stats().war_edges + rt.stats().waw_edges;
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::strassen_flops(nb, m),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["renames"] = static_cast<double>(renames);
  state.counters["hazard_edges"] = static_cast<double>(hazard_edges);
}
BENCHMARK(BM_StrassenRenaming)
    ->Name("Ablation/Strassen")
    ->Arg(1)->Arg(0)  // renaming on / off
    ->Unit(benchmark::kMillisecond)->UseManualTime();

void BM_NQueensRenaming(benchmark::State& state) {
  const bool renaming = state.range(0) != 0;
  std::uint64_t renames = 0, hazard_edges = 0;
  for (auto _ : state) {
    Config cfg;
    cfg.renaming = renaming;
    Runtime rt(cfg);
    auto tt = apps::NQueensTasks::register_in(rt);
    auto t0 = now_ns();
    benchmark::DoNotOptimize(apps::nqueens_smpss(rt, tt, 12, 9));
    state.SetIterationTime(seconds_between(t0, now_ns()));
    renames = rt.stats().renames;
    hazard_edges = rt.stats().war_edges + rt.stats().waw_edges;
  }
  state.counters["renames"] = static_cast<double>(renames);
  state.counters["hazard_edges"] = static_cast<double>(hazard_edges);
}
BENCHMARK(BM_NQueensRenaming)
    ->Name("Ablation/NQueens")
    ->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
