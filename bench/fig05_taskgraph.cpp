// Fig. 5 — "Task dependency graph created by a 6 by 6 block Cholesky."
//
// Regenerates the figure's artifact: builds the 6x6 blocked Cholesky task
// graph, checks the paper's stated facts (56 tasks; after tasks 1 and 6 run,
// task 51 can start), writes the Graphviz rendering to
// fig05_cholesky_6x6.dot, and benchmarks graph construction itself (the
// per-task runtime cost the granularity discussion in Sec. VI rests on).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <mutex>

#include "apps/cholesky.hpp"
#include "graph/dot_export.hpp"
#include "graph/graph_stats.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

void print_fig5_facts_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    Config cfg;
    cfg.num_threads = 1;
    cfg.record_graph = true;
    Runtime rt(cfg);
    auto tt = apps::CholeskyTasks::register_in(rt);
    HyperMatrix h(6, 16, true);
    FlatMatrix a(96);
    fill_spd(a, 5);
    blocked_from_flat(h, a.data());
    apps::cholesky_smpss_hyper(rt, tt, h, blas::tuned_kernels());

    const auto& rec = rt.graph_recorder();
    auto gs = analyze_graph(rec);
    auto preds51 = predecessors_of(rec, 51);
    auto closure51 = ancestor_closure(rec, 51);

    std::printf("=== Fig. 5: 6x6 block Cholesky task graph ===\n");
    std::printf("tasks: %zu (paper: 56)\n", gs.nodes);
    std::printf("true-dependency edges: %zu\n", gs.edges);
    std::printf("critical path: %zu tasks, max width: %zu, avg "
                "parallelism: %.2f\n",
                gs.critical_path, gs.max_width, gs.avg_parallelism);
    std::printf("per type: spotrf=%zu strsm=%zu ssyrk=%zu sgemm=%zu\n",
                gs.per_type_counts[1], gs.per_type_counts[2],
                gs.per_type_counts[3], gs.per_type_counts[4]);
    std::printf("predecessors(task 51) = {");
    for (auto p : preds51) std::printf(" %llu", (unsigned long long)p);
    std::printf(" }  ancestor closure = {");
    for (auto p : closure51) std::printf(" %llu", (unsigned long long)p);
    std::printf(" }   (paper: after tasks 1 and 6, task 51 can start)\n");

    std::ofstream dot("fig05_cholesky_6x6.dot");
    export_dot(dot, rec, rt.task_types());
    std::printf("wrote fig05_cholesky_6x6.dot\n\n");
  });
}

/// Cost of dynamic graph generation: spawn N tasks with dependencies but
/// trivial bodies; reports tasks/second the main thread can sustain — the
/// budget behind the paper's ~250 us granularity guidance.
void BM_GraphConstruction(benchmark::State& state) {
  print_fig5_facts_once();
  const int nb = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Config cfg;
    cfg.num_threads = 2;
    Runtime rt(cfg);
    auto tt = apps::CholeskyTasks::register_in(rt);
    HyperMatrix h(nb, 2, true);  // 2x2 blocks: bodies are ~free
    FlatMatrix a(nb * 2);
    fill_spd(a, 6);
    blocked_from_flat(h, a.data());
    apps::cholesky_smpss_hyper(rt, tt, h, blas::tuned_kernels());
    state.counters["tasks"] = static_cast<double>(rt.stats().tasks_spawned);
  }
  const double tasks = state.counters["tasks"];
  state.counters["tasks_per_sec"] =
      benchmark::Counter(tasks, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GraphConstruction)->Arg(6)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
