// Ablation — the task-window (graph size limit) blocking condition of
// Sec. III. A small window caps the lookahead the scheduler can exploit
// (and forces the main thread to stop generating and start executing); a
// large window exposes more of the graph at the cost of memory. The bench
// sweeps the window on the flat Cholesky, where get/put tasks inflate the
// live-task population.
#include <benchmark/benchmark.h>

#include "apps/cholesky.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

constexpr int kN = 2048, kBlock = 128;

void BM_Window(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  FlatMatrix a0(kN);
  fill_spd(a0, 31);
  std::uint64_t blocked = 0;
  for (auto _ : state) {
    FlatMatrix a(a0);
    Config cfg;
    cfg.task_window = window;
    Runtime rt(cfg);
    auto tt = apps::CholeskyTasks::register_in(rt);
    auto t0 = now_ns();
    int rc = apps::cholesky_smpss_flat(rt, tt, kN, a.data(), kBlock,
                                       blas::tuned_kernels());
    state.SetIterationTime(seconds_between(t0, now_ns()));
    if (rc != 0) state.SkipWithError("factorization failed");
    blocked = rt.stats().main_blocked_on_window;
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::cholesky_flops(kN), benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["window"] = static_cast<double>(window);
  state.counters["main_blocked"] = static_cast<double>(blocked);
}

BENCHMARK(BM_Window)->Name("Ablation/TaskWindow")
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
