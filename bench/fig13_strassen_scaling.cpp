// Fig. 13 — "Performance of the blocked Strassen's algorithm on
// hyper-matrices of 8192x8192 single precision floats arranged in blocks of
// 512 by 512 elements varying the number of processors."
//
// Gflops computed with Strassen's operation count, as the paper does.
// Expected shape: smoother scaling than the plain multiplication (the less
// linear graph gives work-stealing room), but lower absolute Gflops — the
// renaming allocations and the memory-bound additions both cost (paper
// Sec. VI.C). The renamed-bytes counter is reported to show the renaming
// pressure.
#include <benchmark/benchmark.h>

#include "apps/strassen.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

constexpr int kNb = 8;      // 8x8 block grid (power of two, as required)
constexpr int kBlock = 192; // n = 1536

template <blas::Variant V>
void BM_Strassen(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const int scale = benchutil::bench_scale();
  const int m = kBlock * scale;
  const int n = kNb * m;
  FlatMatrix a(n), b(n);
  fill_random(a, 13);
  fill_random(b, 14);
  HyperMatrix ha(kNb, m, true), hb(kNb, m, true);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  std::uint64_t renames = 0, rename_bytes = 0;
  for (auto _ : state) {
    HyperMatrix hc(kNb, m, true);
    Config cfg;
    cfg.num_threads = threads;
    Runtime rt(cfg);
    auto tt = apps::StrassenTasks::register_in(rt);
    auto t0 = now_ns();
    apps::strassen_smpss(rt, tt, ha, hb, hc, blas::kernels(V));
    state.SetIterationTime(seconds_between(t0, now_ns()));
    renames = rt.stats().renames;
    rename_bytes = rt.stats().rename_bytes_total;
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::strassen_flops(kNb, m),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["threads"] = threads;
  state.counters["renames"] = static_cast<double>(renames);
  state.counters["renamed_MiB"] =
      static_cast<double>(rename_bytes) / (1 << 20);
}

BENCHMARK(BM_Strassen<blas::Variant::Tuned>)
    ->Name("Fig13/SMPSs+tuned_tiles")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_Strassen<blas::Variant::Ref>)
    ->Name("Fig13/SMPSs+ref_tiles")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
