// Task-bench-style overhead matrix over the dependency-pattern engine
// (Slaughter et al.'s "task bench" methodology): the same parameterized
// graphs the conformance harness proves correct, timed as tasks/second per
// dependence pattern × task grain, for SMPSs against the dependency-free
// baselines (fork-join, OMP3-style task pool).
//
// What each axis isolates:
//   * pattern  — dependency-analysis + scheduling cost per graph shape
//     (chains stress the version chains, stencils/fft the multi-input
//     wiring, all_to_all/spread the region analyzer's wide fan-in,
//     trivial the pure spawn/retire floor).
//   * grain    — how fast runtime overhead amortizes as bodies grow
//     (empty vs. compute-bound busywork).
//   * baseline — what the dependency analysis costs relative to runtimes
//     that make the *program* synchronize (a barrier per timestep).
//
// CI serializes this into BENCH_patterns.json; tools/bench_compare.py diffs
// the per-benchmark medians against the cached main baseline and fails the
// run on >20% regression, so every future analyzer/scheduler change is
// gated against every pattern family here.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "patterns/driver.hpp"

namespace {

using namespace smpss;
using namespace smpss::patterns;

constexpr unsigned kThreads = 4;

PatternSpec bench_spec(PatternKind kind, KernelSpec kernel = {}) {
  PatternSpec s;
  s.kind = kind;
  // Wide-fan-in families run through the region analyzer whose conflict
  // scan is per-interval; keep their rows narrower so one iteration stays
  // in the same ballpark as the address-mode families.
  const bool wide = kind == PatternKind::AllToAll || kind == PatternKind::Spread;
  s.width = (wide ? 32 : 64) * smpss::benchutil::bench_scale();
  s.steps = 32;
  s.radix = 4;
  s.period = 3;
  s.seed = 0xBE7C;
  s.kernel = kernel;
  return s;
}

void report(benchmark::State& state, std::uint64_t tasks) {
  state.counters["tasks_per_s"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.counters["ns_per_task"] = benchmark::Counter(
      static_cast<double>(tasks),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Patterns_SMPSs(benchmark::State& state, PatternKind kind,
                       KernelSpec kernel) {
  const PatternSpec spec = bench_spec(kind, kernel);
  RunOptions opt;
  opt.cfg.num_threads = kThreads;
  opt.cfg.task_window = 1u << 16;  // measure the engine, not the throttle
  opt.mode =
      address_mode_ok(spec) ? LowerMode::Address : LowerMode::Region;
  std::uint64_t tasks = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    RunResult r = run_pattern(spec, opt);
    sink ^= image_checksum(r.image);
    tasks += spec.total_tasks();
  }
  benchmark::DoNotOptimize(sink);
  report(state, tasks);
}

void BM_Patterns_TaskPool(benchmark::State& state, PatternKind kind) {
  const PatternSpec spec = bench_spec(kind);
  const int nf = default_fields(spec);
  std::uint64_t tasks = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= image_checksum(run_taskpool_baseline(spec, nf, kThreads));
    tasks += spec.total_tasks();
  }
  benchmark::DoNotOptimize(sink);
  report(state, tasks);
}

void BM_Patterns_ForkJoin(benchmark::State& state, PatternKind kind) {
  const PatternSpec spec = bench_spec(kind);
  const int nf = default_fields(spec);
  std::uint64_t tasks = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= image_checksum(run_forkjoin_baseline(spec, nf, kThreads));
    tasks += spec.total_tasks();
  }
  benchmark::DoNotOptimize(sink);
  report(state, tasks);
}

}  // namespace

// Every pattern family with empty bodies: pure per-shape engine overhead.
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, trivial, PatternKind::Trivial,
                  KernelSpec{})->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, chain, PatternKind::Chain, KernelSpec{})
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, stencil_1d, PatternKind::Stencil1D,
                  KernelSpec{})->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, stencil_1d_periodic,
                  PatternKind::Stencil1DPeriodic, KernelSpec{})->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, fft, PatternKind::Fft, KernelSpec{})
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, tree, PatternKind::Tree, KernelSpec{})
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, random_nearest,
                  PatternKind::RandomNearest, KernelSpec{})->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, all_to_all, PatternKind::AllToAll,
                  KernelSpec{})->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, spread, PatternKind::Spread,
                  KernelSpec{})->UseRealTime();

// Grain sweep on one stencil family: overhead amortization as bodies grow.
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, stencil_1d_compute64,
                  PatternKind::Stencil1D,
                  KernelSpec{KernelKind::Compute, 64})->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, stencil_1d_compute1k,
                  PatternKind::Stencil1D,
                  KernelSpec{KernelKind::Compute, 1024})->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_SMPSs, stencil_1d_memory4,
                  PatternKind::Stencil1D,
                  KernelSpec{KernelKind::Memory, 4})->UseRealTime();

// Dependency-free baselines (program-side step barriers) for the headline
// families — the apples-to-apples comparison task-bench exists for.
BENCHMARK_CAPTURE(BM_Patterns_TaskPool, trivial, PatternKind::Trivial)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_TaskPool, stencil_1d, PatternKind::Stencil1D)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_ForkJoin, trivial, PatternKind::Trivial)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Patterns_ForkJoin, stencil_1d, PatternKind::Stencil1D)
    ->UseRealTime();
