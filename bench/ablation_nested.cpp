// Ablation — nested task parallelism on/off (SMPSS_NESTED).
//
// The paper's runtime demotes task calls inside tasks to inline function
// calls (Sec. VII.D), so recursive workloads expose only the parallelism
// the outermost expansion creates — and pay the main thread's serial task
// generation for the whole tree. With nested mode on, the recursion itself
// runs as tasks: generation is spread over the workers and joined with
// taskwait. This bench quantifies the trade on the two recursive apps the
// paper stresses (Strassen: deep arithmetic recursion with temporaries;
// multisort: region-analyzed sort/merge tree) — nested wins when the tree
// is deep enough that serial generation is the bottleneck, and pays the
// shard-locked submission pipeline plus taskwait joins when it is not.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/multisort.hpp"
#include "apps/strassen.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

void BM_StrassenNested(benchmark::State& state) {
  const bool nested = state.range(0) != 0;
  const int nb = 8, m = 64;
  const int n = nb * m;
  FlatMatrix a(n), b(n);
  fill_random(a, 5);
  fill_random(b, 6);
  HyperMatrix ha(nb, m, true), hb(nb, m, true);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  std::uint64_t nested_tasks = 0, taskwaits = 0, tasks = 0;
  for (auto _ : state) {
    HyperMatrix hc(nb, m, true);
    Config cfg;
    cfg.nested_tasks = nested;
    Runtime rt(cfg);
    auto tt = apps::StrassenTasks::register_in(rt);
    auto t0 = now_ns();
    apps::strassen_smpss(rt, tt, ha, hb, hc, blas::tuned_kernels());
    state.SetIterationTime(seconds_between(t0, now_ns()));
    nested_tasks = rt.stats().tasks_nested;
    taskwaits = rt.stats().taskwaits;
    tasks = rt.stats().tasks_executed;
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::strassen_flops(nb, m),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["nested_tasks"] = static_cast<double>(nested_tasks);
  state.counters["taskwaits"] = static_cast<double>(taskwaits);
}
BENCHMARK(BM_StrassenNested)
    ->Name("Ablation/Strassen-nested")
    ->Arg(0)->Arg(1)  // inline (paper) / nested spawn
    ->Unit(benchmark::kMillisecond)->UseManualTime();

void BM_MultisortNested(benchmark::State& state) {
  const bool nested = state.range(0) != 0;
  const long n = 1L << 20;
  const long quick = 4096, merge = 4096;
  std::vector<apps::ELM> init(static_cast<std::size_t>(n));
  Xoshiro256 rng(7);
  for (auto& x : init) x = static_cast<apps::ELM>(rng.next());
  std::uint64_t nested_tasks = 0, taskwaits = 0;
  for (auto _ : state) {
    std::vector<apps::ELM> data = init;
    std::vector<apps::ELM> tmp(data.size());
    Config cfg;
    cfg.nested_tasks = nested;
    Runtime rt(cfg);
    auto tt = apps::MultisortTasks::register_in(rt);
    auto t0 = now_ns();
    apps::multisort_smpss_regions(rt, tt, data.data(), tmp.data(), n, quick,
                                  merge);
    state.SetIterationTime(seconds_between(t0, now_ns()));
    nested_tasks = rt.stats().tasks_nested;
    taskwaits = rt.stats().taskwaits;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["nested_tasks"] = static_cast<double>(nested_tasks);
  state.counters["taskwaits"] = static_cast<double>(taskwaits);
}
BENCHMARK(BM_MultisortNested)
    ->Name("Ablation/Multisort-nested")
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
