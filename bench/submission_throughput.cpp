// Spawn throughput with 1–8 concurrent in-task submitters, comparing the
// address-striped dependency pipeline (default shard count) against the
// shards=1 configuration, which serializes every submission on one mutex —
// the behavior of the pre-sharding global submission lock.
//
// Each submitter is a generator task that spawns a stream of small
// dependent tasks over its own private lanes; generators run on distinct
// workers, so their submissions hit the dependency pipeline concurrently.
// The reported rate counts every spawned task (generators + children) per
// second of wall time, end to end (analysis + scheduling + execution of
// trivial bodies).
//
// The CI bench runner serializes this into BENCH_submission.json
// (tasks/sec per submitter count) as a perf-trajectory artifact:
//
//   ./bench/submission_throughput --benchmark_out=BENCH_submission.json \
//       --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "runtime/runtime.hpp"

namespace {

constexpr int kChildrenPerSubmitter = 4000;
constexpr int kLanesPerSubmitter = 64;

void run_submission_round(smpss::Runtime& rt, int submitters,
                          std::vector<std::vector<long>>& lanes) {
  for (int s = 0; s < submitters; ++s) {
    rt.spawn(
        [&rt](long* lane0) {
          for (int i = 0; i < kChildrenPerSubmitter; ++i)
            rt.spawn([](long* q) { *q += 1; },
                     smpss::inout(lane0 + (i % kLanesPerSubmitter)));
          rt.taskwait();
        },
        smpss::inout(lanes[static_cast<std::size_t>(s)].data(),
                     kLanesPerSubmitter));
  }
  rt.barrier();
}

void submission_bench(benchmark::State& state, unsigned dep_shards,
                      bool dep_lockfree) {
  const int submitters = static_cast<int>(state.range(0));
  smpss::Config cfg;
  cfg.nested_tasks = true;
  cfg.dep_shards = dep_shards;
  cfg.dep_lockfree = dep_lockfree;
  // One worker per generator plus the main thread; children interleave on
  // the same workers, so submission and execution contend realistically.
  cfg.num_threads = static_cast<unsigned>(submitters) + 1;
  cfg.task_window = 1u << 20;  // measure the pipeline, not the throttle
  smpss::Runtime rt(cfg);

  std::vector<std::vector<long>> lanes(static_cast<std::size_t>(submitters));
  for (auto& l : lanes) l.assign(kLanesPerSubmitter, 0);

  std::uint64_t tasks = 0;
  for (auto _ : state) {
    run_submission_round(rt, submitters, lanes);
    tasks += static_cast<std::uint64_t>(submitters) *
             (kChildrenPerSubmitter + 1);
  }
  state.counters["tasks_per_s"] =
      benchmark::Counter(static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.counters["submitters"] =
      benchmark::Counter(static_cast<double>(submitters));
  state.counters["dep_shards"] =
      benchmark::Counter(static_cast<double>(rt.config().dep_shards));
  state.counters["dep_lockfree"] =
      benchmark::Counter(rt.config().dep_lockfree ? 1.0 : 0.0);
}

// The Sharded/GlobalLock rows pin dep_lockfree off: they are the mutex
// baselines the lock-free row is compared against (and what the runtime
// falls back to under SMPSS_DEP_LOCKFREE=0).
void BM_SpawnThroughput_Sharded(benchmark::State& state) {
  submission_bench(state, /*dep_shards=*/0,  // 0 = auto (default striping)
                   /*dep_lockfree=*/false);
}

void BM_SpawnThroughput_GlobalLock(benchmark::State& state) {
  submission_bench(state, /*dep_shards=*/1,  // single shard ≈ global mutex
                   /*dep_lockfree=*/false);
}

// The default pipeline: CAS-published version chains, no shard mutex on
// the submission path. The shard count only picks the entry-table layout.
void BM_SpawnThroughput_Lockfree(benchmark::State& state) {
  submission_bench(state, /*dep_shards=*/0, /*dep_lockfree=*/true);
}

void submitter_axis(benchmark::internal::Benchmark* b) {
  for (long s : {1L, 2L, 4L, 8L}) b->Arg(s);
}

}  // namespace

BENCHMARK(BM_SpawnThroughput_Sharded)->Apply(submitter_axis)->UseRealTime();
BENCHMARK(BM_SpawnThroughput_GlobalLock)->Apply(submitter_axis)->UseRealTime();
BENCHMARK(BM_SpawnThroughput_Lockfree)->Apply(submitter_axis)->UseRealTime();
