// Ablation — scheduler structure (paper Sec. III and the SuperMatrix
// comparison of Sec. VII.C).
//
// Three configurations on the blocked Cholesky:
//   distributed+creation  the paper's design: per-worker lists consumed
//                         LIFO, FIFO stealing in creation order
//   distributed+random    same lists, random victim order
//   centralized           one shared FIFO (SuperMatrix-style), no locality
// The per-worker counters expose how much work came from the owner's own
// list (locality hits) vs. the shared queue vs. steals.
#include <benchmark/benchmark.h>

#include "apps/cholesky.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

constexpr int kN = 2048, kBlock = 128;

void run_config(benchmark::State& state, SchedulerMode mode, StealOrder order) {
  FlatMatrix a0(kN);
  fill_spd(a0, 21);
  StatsSnapshot last{};
  for (auto _ : state) {
    HyperMatrix h(kN / kBlock, kBlock, true);
    blocked_from_flat(h, a0.data());
    Config cfg;
    cfg.scheduler_mode = mode;
    cfg.steal_order = order;
    Runtime rt(cfg);
    auto tt = apps::CholeskyTasks::register_in(rt);
    auto t0 = now_ns();
    int rc = apps::cholesky_smpss_hyper(rt, tt, h, blas::tuned_kernels());
    state.SetIterationTime(seconds_between(t0, now_ns()));
    if (rc != 0) state.SkipWithError("factorization failed");
    last = rt.stats();
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::cholesky_flops(kN), benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  double executed = static_cast<double>(last.tasks_executed);
  state.counters["own_list_pct"] =
      executed ? 100.0 * static_cast<double>(last.acquired_own) / executed : 0;
  state.counters["steal_pct"] =
      executed ? 100.0 * static_cast<double>(last.steals) / executed : 0;
  state.counters["main_q_pct"] =
      executed ? 100.0 * static_cast<double>(last.acquired_main) / executed : 0;
}

void BM_Paper(benchmark::State& state) {
  run_config(state, SchedulerMode::Distributed, StealOrder::CreationOrder);
}
void BM_RandomSteal(benchmark::State& state) {
  run_config(state, SchedulerMode::Distributed, StealOrder::Random);
}
void BM_Centralized(benchmark::State& state) {
  run_config(state, SchedulerMode::Centralized, StealOrder::CreationOrder);
}

BENCHMARK(BM_Paper)->Name("Ablation/Sched/distributed+creation")
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_RandomSteal)->Name("Ablation/Sched/distributed+random")
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_Centralized)->Name("Ablation/Sched/centralized(SuperMatrix-like)")
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
