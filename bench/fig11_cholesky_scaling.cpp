// Fig. 11 — "Performance of Cholesky with matrices of 8192x8192 single
// precision floats varying the number of processors with SMPSs, Goto BLAS
// and Intel MKL."
//
// Four series, as in the paper:
//   SMPSs + tuned tiles / SMPSs + ref tiles      (flat matrix, on-demand
//                                                 block copies — Fig. 9/10)
//   Threaded tuned / Threaded ref                (bulk-synchronous blocked
//                                                 Cholesky baselines)
// Expected shape: the dependency-unaware threaded baselines stop scaling
// early (the paper: MKL ~4 threads, Goto ~10) because the panel serializes
// behind barriers; SMPSs keeps scaling to the full machine.
#include <benchmark/benchmark.h>

#include "apps/cholesky.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "blas/threaded_blas.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

constexpr int kBaseN = 2048;
constexpr int kBlock = 128;  // the paper's tuned choice scaled down (256@8192)

template <blas::Variant V>
void BM_SmpssCholesky(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const int n = kBaseN * benchutil::bench_scale();
  FlatMatrix a0(n);
  fill_spd(a0, 11);
  for (auto _ : state) {
    FlatMatrix a(a0);
    Config cfg;
    cfg.num_threads = threads;
    Runtime rt(cfg);
    auto tt = apps::CholeskyTasks::register_in(rt);
    auto t0 = now_ns();
    int rc = apps::cholesky_smpss_flat(rt, tt, n, a.data(), kBlock,
                                       blas::kernels(V));
    state.SetIterationTime(seconds_between(t0, now_ns()));
    if (rc != 0) state.SkipWithError("factorization failed");
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::cholesky_flops(n), benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["threads"] = threads;
}

template <blas::Variant V>
void BM_ThreadedCholesky(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const int n = kBaseN * benchutil::bench_scale();
  FlatMatrix a0(n);
  fill_spd(a0, 11);
  blas::ThreadedBlas tb(threads, V);
  for (auto _ : state) {
    FlatMatrix a(a0);
    auto t0 = now_ns();
    int rc = tb.potrf_ln_flat(n, a.data(), kBlock);
    state.SetIterationTime(seconds_between(t0, now_ns()));
    if (rc != 0) state.SkipWithError("factorization failed");
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::cholesky_flops(n), benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["threads"] = threads;
}

BENCHMARK(BM_SmpssCholesky<blas::Variant::Tuned>)
    ->Name("Fig11/SMPSs+tuned_tiles")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_SmpssCholesky<blas::Variant::Ref>)
    ->Name("Fig11/SMPSs+ref_tiles")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_ThreadedCholesky<blas::Variant::Tuned>)
    ->Name("Fig11/Threaded_tuned")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_ThreadedCholesky<blas::Variant::Ref>)
    ->Name("Fig11/Threaded_ref")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
