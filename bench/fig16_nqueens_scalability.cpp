// Fig. 16 — "Scalability of N Queens with array duplications varying the
// number of processors compared to the same programming model with 1
// thread."
//
// The paper's methodological point: many publications compare Cilk/OpenMP
// against a sequential version that already contains the parallel version's
// array copies, which inflates reported scalability. Normalizing each model
// by its own 1-thread run (this figure) shows near-ideal scalability for
// all three — the differences of Fig. 15 come from 1-thread overheads, not
// from scheduling.
#include <benchmark/benchmark.h>

#include <map>
#include <mutex>

#include "apps/nqueens.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"

namespace {

using namespace smpss;

constexpr int kN = 13;
constexpr int kDepth = 10;

enum class Model { Smpss, ForkJoin, TaskPool };

long run_model(Model m, unsigned threads) {
  switch (m) {
    case Model::Smpss: {
      Config cfg;
      cfg.num_threads = threads;
      Runtime rt(cfg);
      auto tt = apps::NQueensTasks::register_in(rt);
      return apps::nqueens_smpss(rt, tt, kN, kDepth);
    }
    case Model::ForkJoin: {
      fj::Scheduler s(threads);
      return apps::nqueens_fj(s, kN, kDepth);
    }
    case Model::TaskPool: {
      omp3::TaskPool p(threads);
      return apps::nqueens_omp3(p, kN, kDepth);
    }
  }
  return 0;
}

double one_thread_seconds(Model m) {
  static std::mutex mu;
  static std::map<Model, double> cache;
  std::lock_guard<std::mutex> lk(mu);
  auto it = cache.find(m);
  if (it != cache.end()) return it->second;
  auto t0 = now_ns();
  benchmark::DoNotOptimize(run_model(m, 1));
  double secs = seconds_between(t0, now_ns());
  cache[m] = secs;
  return secs;
}

template <Model M>
void BM_Scalability(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  double total = 0.0;
  for (auto _ : state) {
    auto t0 = now_ns();
    benchmark::DoNotOptimize(run_model(M, threads));
    total += seconds_between(t0, now_ns());
  }
  double mean = total / static_cast<double>(state.iterations());
  state.counters["speedup_vs_1thread"] = one_thread_seconds(M) / mean;
  state.counters["threads"] = threads;
}

BENCHMARK(BM_Scalability<Model::Smpss>)
    ->Name("Fig16/SMPSs")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Scalability<Model::ForkJoin>)
    ->Name("Fig16/Cilk-like")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Scalability<Model::TaskPool>)
    ->Name("Fig16/OMP3-like")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
