// Per-task overhead microbench for the retire-side fast path: spawn+retire
// latency with near-empty bodies, isolating what the runtime itself costs
// per task. Three shapes, each stressing one layer of the completion-side
// overhaul, each ablated via the knobs so CI's bench-compare gate tracks
// every layer separately:
//
//   * independent  — N tasks with no edges: pure spawn/retire churn. Pooled
//     TaskNode/closure storage (Config::pool_cache) vs. the malloc/free
//     baseline (pool_cache = 0).
//   * chain1       — one long inout chain: every completion releases exactly
//     one successor, the immediate-chaining case (Config::chain_depth) vs.
//     the paper-faithful list round trip (chain_depth = 0).
//   * fanout       — a producer releasing W readers per round: the batched
//     release path (one list publication + at most one wakeup per burst).
//
// CI serializes this into BENCH_task_overhead.json next to the submission
// bench; tools/bench_compare.py diffs both against the cached main baseline.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "runtime/runtime.hpp"

namespace {

smpss::Config overhead_config(unsigned chain_depth, unsigned pool_cache) {
  smpss::Config cfg;
  cfg.num_threads = 4;
  cfg.chain_depth = chain_depth;
  cfg.pool_cache = pool_cache;
  cfg.task_window = 1u << 16;  // measure the lifecycle, not the throttle
  return cfg;
}

void report(benchmark::State& state, std::uint64_t tasks,
            const smpss::Runtime& rt) {
  state.counters["tasks_per_s"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.counters["ns_per_task"] = benchmark::Counter(
      static_cast<double>(tasks),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  const auto s = rt.stats();
  state.counters["chained"] =
      benchmark::Counter(static_cast<double>(s.chained_executions));
  state.counters["pool_hits"] =
      benchmark::Counter(static_cast<double>(s.pool_hits));
  state.counters["wakeups_suppressed"] =
      benchmark::Counter(static_cast<double>(s.wakeups_suppressed));
}

// --- independent: spawn/retire churn, pooling ablation -----------------------

constexpr int kIndependentTasks = 20000;

void independent_bench(benchmark::State& state, unsigned pool_cache) {
  smpss::Runtime rt(overhead_config(smpss::Config{}.chain_depth, pool_cache));
  std::vector<long> lanes(256, 0);
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    for (int i = 0; i < kIndependentTasks; ++i)
      rt.spawn([](long* p) { *p += 1; }, smpss::inout(&lanes[i % 256]));
    rt.barrier();
    tasks += kIndependentTasks;
  }
  report(state, tasks, rt);
}

void BM_TaskOverhead_Independent_Pooled(benchmark::State& state) {
  independent_bench(state, smpss::Config{}.pool_cache);
}
void BM_TaskOverhead_Independent_Malloc(benchmark::State& state) {
  independent_bench(state, /*pool_cache=*/0);
}

// --- chain1: immediate-successor chaining ablation ---------------------------

constexpr int kChainLen = 20000;

void chain_bench(benchmark::State& state, unsigned chain_depth) {
  smpss::Runtime rt(overhead_config(chain_depth, smpss::Config{}.pool_cache));
  long x = 0;
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    for (int i = 0; i < kChainLen; ++i)
      rt.spawn([](long* p) { *p += 1; }, smpss::inout(&x));
    rt.barrier();
    tasks += kChainLen;
  }
  report(state, tasks, rt);
}

void BM_TaskOverhead_Chain1_Chained(benchmark::State& state) {
  chain_bench(state, smpss::Config{}.chain_depth);
}
void BM_TaskOverhead_Chain1_ListRoundTrip(benchmark::State& state) {
  chain_bench(state, /*chain_depth=*/0);
}

// --- fanout: batched multi-successor release ---------------------------------

constexpr int kFanRounds = 200;
constexpr int kFanWidth = 64;

void BM_TaskOverhead_FanOut(benchmark::State& state) {
  smpss::Runtime rt(
      overhead_config(smpss::Config{}.chain_depth, smpss::Config{}.pool_cache));
  long src = 0;
  std::vector<long> sinks(kFanWidth, 0);
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    for (int r = 0; r < kFanRounds; ++r) {
      rt.spawn([](long* p) { *p += 1; }, smpss::inout(&src));
      for (int w = 0; w < kFanWidth; ++w)
        rt.spawn(
            [](const long* s, long* d) { *d += *s; }, smpss::in(&src),
            smpss::inout(&sinks[w]));
    }
    rt.barrier();
    tasks += static_cast<std::uint64_t>(kFanRounds) * (kFanWidth + 1);
  }
  report(state, tasks, rt);
  state.counters["batched_releases"] = benchmark::Counter(
      static_cast<double>(rt.stats().batched_releases));
}

}  // namespace

BENCHMARK(BM_TaskOverhead_Independent_Pooled)->UseRealTime();
BENCHMARK(BM_TaskOverhead_Independent_Malloc)->UseRealTime();
BENCHMARK(BM_TaskOverhead_Chain1_Chained)->UseRealTime();
BENCHMARK(BM_TaskOverhead_Chain1_ListRoundTrip)->UseRealTime();
BENCHMARK(BM_TaskOverhead_FanOut)->UseRealTime();
