// Commutative-mode payoff bench: push-style PageRank (apps/pagerank.hpp)
// with its per-destination-block accumulators lowered two ways:
//
//   * inout       — the paper-faithful vocabulary: all scatter tasks hitting
//                   one accumulator chain in program order, an O(blocks^2)
//                   serialization per iteration that the dataflow never
//                   asked for.
//   * commutative — the same tasks under Dir::Commutative: mutual exclusion
//                   through the group's conflict token, no ordering, so any
//                   ready writer runs the moment the token is free.
//
// Both rows produce bit-identical ranks (fixed-point integer arithmetic);
// every iteration is checked against the sequential oracle, so the speedup
// is never bought with a wrong answer. tools/bench_compare.py gates
// BENCH_commutative.json like every other bench artifact.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "apps/pagerank.hpp"
#include "bench_common.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace smpss;

struct Problem {
  int n, degree, iters, block;
};

Problem problem() {
  const int scale = benchutil::bench_scale();
  return Problem{2048 * scale, 8, 4, 128};
}

void BM_PageRank(benchmark::State& state, bool use_commutative) {
  const Problem pr = problem();
  const unsigned nthreads = static_cast<unsigned>(state.range(0));

  std::vector<std::int64_t> want(static_cast<std::size_t>(pr.n));
  apps::pagerank_init(pr.n, want.data());
  apps::pagerank_seq(pr.n, pr.degree, pr.iters, want.data());

  std::vector<std::int64_t> ranks(static_cast<std::size_t>(pr.n));
  std::vector<std::int64_t> accum(static_cast<std::size_t>(pr.n));
  std::uint64_t tasks = 0, deferrals = 0, wakeups = 0;
  for (auto _ : state) {
    apps::pagerank_init(pr.n, ranks.data());
    Config cfg;
    cfg.num_threads = nthreads;
    Runtime rt(cfg);
    const apps::PageRankTasks tt = apps::PageRankTasks::register_in(rt);
    apps::pagerank_smpss(rt, tt, pr.n, pr.degree, pr.iters, pr.block,
                         ranks.data(), accum.data(), use_commutative);
    const StatsSnapshot s = rt.stats();
    tasks += s.tasks_spawned;
    deferrals += s.conflict_deferrals;
    wakeups += s.conflict_wakeups;
    if (ranks != want) {
      state.SkipWithError("ranks diverged from the sequential oracle");
      return;
    }
  }
  const double iters_done = static_cast<double>(state.iterations());
  state.counters["edges_per_s"] = benchmark::Counter(
      iters_done * static_cast<double>(pr.n) * pr.degree * pr.iters,
      benchmark::Counter::kIsRate);
  state.counters["tasks_per_s"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.counters["deferrals_per_ktask"] =
      tasks ? 1000.0 * static_cast<double>(deferrals) /
                  static_cast<double>(tasks)
            : 0.0;
  state.counters["wakeups_per_ktask"] =
      tasks ? 1000.0 * static_cast<double>(wakeups) /
                  static_cast<double>(tasks)
            : 0.0;
}

}  // namespace

BENCHMARK_CAPTURE(BM_PageRank, commutative, true)
    ->Apply(smpss::benchutil::apply_thread_axis)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_PageRank, inout, false)
    ->Apply(smpss::benchutil::apply_thread_axis)
    ->UseRealTime();
