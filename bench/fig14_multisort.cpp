// Fig. 14 — "Performance of multisort varying the number of processors."
//
// Three runtimes over the same decomposition: the Cilk-like fork-join
// scheduler, the OMP3-like task pool, and SMPSs (array regions). The
// reported counter is speedup vs. the sequential multisort, matching the
// paper's y-axis. Expected shape: all three scale similarly, SMPSs slightly
// ahead (it needs no barriers between merge levels — dependencies release
// merges as their inputs arrive).
#include <benchmark/benchmark.h>

#include <mutex>
#include <vector>

#include "apps/multisort.hpp"
#include "baselines/omp_real/omp_tasks.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

namespace {

using namespace smpss;
using apps::ELM;

constexpr long kQuick = 1 << 15;
constexpr long kMerge = 1 << 14;

long problem_size() { return (1L << 22) * benchutil::bench_scale(); }

const std::vector<ELM>& input_data() {
  static std::vector<ELM> data = [] {
    Xoshiro256 rng(14);
    std::vector<ELM> v(static_cast<std::size_t>(problem_size()));
    for (auto& x : v) x = static_cast<ELM>(rng.next());
    return v;
  }();
  return data;
}

double sequential_seconds() {
  static std::once_flag flag;
  static double secs = 0.0;
  std::call_once(flag, [] {
    auto data = input_data();
    std::vector<ELM> tmp(data.size());
    auto t0 = now_ns();
    apps::multisort_seq(data.data(), tmp.data(),
                        static_cast<long>(data.size()), kQuick);
    secs = seconds_between(t0, now_ns());
  });
  return secs;
}

template <typename RunFn>
void run_sort_bench(benchmark::State& state, RunFn&& run) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const long n = problem_size();
  double total = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    auto data = input_data();
    std::vector<ELM> tmp(data.size());
    state.ResumeTiming();
    auto t0 = now_ns();
    run(threads, data.data(), tmp.data(), n);
    total += seconds_between(t0, now_ns());
  }
  double mean = total / static_cast<double>(state.iterations());
  state.counters["speedup_vs_seq"] = sequential_seconds() / mean;
  state.counters["threads"] = threads;
}

void BM_MultisortSmpss(benchmark::State& state) {
  run_sort_bench(state, [](unsigned threads, ELM* d, ELM* t, long n) {
    Config cfg;
    cfg.num_threads = threads;
    Runtime rt(cfg);
    auto tt = apps::MultisortTasks::register_in(rt);
    apps::multisort_smpss_regions(rt, tt, d, t, n, kQuick, kMerge);
  });
}

void BM_MultisortForkJoin(benchmark::State& state) {
  run_sort_bench(state, [](unsigned threads, ELM* d, ELM* t, long n) {
    fj::Scheduler s(threads);
    apps::multisort_fj(s, d, t, n, kQuick, kMerge);
  });
}

void BM_MultisortTaskPool(benchmark::State& state) {
  run_sort_bench(state, [](unsigned threads, ELM* d, ELM* t, long n) {
    omp3::TaskPool p(threads);
    apps::multisort_omp3(p, d, t, n, kQuick, kMerge);
  });
}

void BM_MultisortOmpReal(benchmark::State& state) {
  if (!ompreal::available()) {
    state.SkipWithError("built without OpenMP");
    return;
  }
  run_sort_bench(state, [](unsigned threads, ELM* d, ELM* t, long n) {
    ompreal::multisort(d, t, n, kQuick, kMerge, threads);
  });
}

BENCHMARK(BM_MultisortSmpss)
    ->Name("Fig14/SMPSs")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_MultisortForkJoin)
    ->Name("Fig14/Cilk-like")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_MultisortTaskPool)
    ->Name("Fig14/OMP3-like")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_MultisortOmpReal)
    ->Name("Fig14/OpenMP-real")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
