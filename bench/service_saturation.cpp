// Service-mode saturation: N concurrent client threads, each with its own
// StreamHandle, multiplex small dependency chains (64 independent inout
// chains per stream) onto one persistent runtime.
//
// Two load models per stream count:
//
//   * OpenLoop — clients pace submissions against a fixed arrival schedule
//     (next_deadline += period; sleep only when ahead). The runtime cannot
//     slow the offered load down by backpressure alone, so queueing delay
//     shows up in the retire-latency tail instead of vanishing into a
//     slower client. p99_ns bounded is the service-mode headline claim.
//   * ClosedLoop — clients submit as fast as admission lets them; measures
//     the saturated multiplexing throughput of the admission ring + sharded
//     analyzers.
//
// Counters: tasks_per_s (end-to-end rate), p50_ns / p99_ns (submit-to-retire
// latency over every stream's histogram, merged by Runtime::stats()). The CI
// bench runner serializes this into BENCH_service.json and bench_compare
// gates both the median throughput and the p99 tail:
//
//   ./bench/service_saturation --benchmark_out=BENCH_service.json \
//       --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "runtime/runtime.hpp"

namespace {

constexpr int kLanesPerStream = 64;
constexpr int kTasksPerClientPerIter = 2000;
// Open-loop offered load per stream: one task every 10 us = 100k tasks/s.
// With 4+ streams that is well past the point where naive admission would
// collapse the trickle tail; the p99 gate keeps it honest.
constexpr auto kArrivalPeriod = std::chrono::microseconds(10);

struct ClientLanes {
  std::vector<long> cells;
  ClientLanes() : cells(kLanesPerStream, 0) {}
};

void run_clients(std::vector<smpss::StreamHandle>& streams,
                 std::vector<ClientLanes>& lanes, bool open_loop) {
  std::vector<std::thread> clients;
  clients.reserve(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    clients.emplace_back([&, s] {
      smpss::StreamHandle& stream = streams[s];
      long* base = lanes[s].cells.data();
      auto deadline = std::chrono::steady_clock::now();
      for (int i = 0; i < kTasksPerClientPerIter; ++i) {
        if (open_loop) {
          deadline += kArrivalPeriod;
          // Open loop: sleep only when ahead of schedule; when behind,
          // submit immediately and let the backlog land in the tail.
          if (auto now = std::chrono::steady_clock::now(); now < deadline)
            std::this_thread::sleep_until(deadline);
        }
        stream.post([](long* q) { *q += 1; },
                    smpss::inout(base + (i % kLanesPerStream)));
      }
      stream.drain();
    });
  }
  for (auto& t : clients) t.join();
}

void service_bench(benchmark::State& state, bool open_loop) {
  const int nstreams = static_cast<int>(state.range(0));
  smpss::Config cfg;
  cfg.nested_tasks = true;
  cfg.task_window = 4096;
  // Workers only — the clients are external threads, as in a real service.
  cfg.num_threads = 4;
  smpss::Runtime rt(cfg);

  std::vector<smpss::StreamHandle> streams;
  std::vector<ClientLanes> lanes(static_cast<std::size_t>(nstreams));
  for (int s = 0; s < nstreams; ++s)
    streams.push_back(
        rt.open_stream({.name = "client-" + std::to_string(s)}));

  std::uint64_t tasks = 0;
  for (auto _ : state) {
    run_clients(streams, lanes, open_loop);
    tasks += static_cast<std::uint64_t>(nstreams) * kTasksPerClientPerIter;
  }

  const smpss::StatsSnapshot st = rt.stats();
  state.counters["tasks_per_s"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.counters["streams"] =
      benchmark::Counter(static_cast<double>(nstreams));
  state.counters["p50_ns"] =
      benchmark::Counter(static_cast<double>(st.service_p50_ns));
  state.counters["p99_ns"] =
      benchmark::Counter(static_cast<double>(st.service_p99_ns));
}

void BM_ServiceSaturation_OpenLoop(benchmark::State& state) {
  service_bench(state, /*open_loop=*/true);
}

void BM_ServiceSaturation_ClosedLoop(benchmark::State& state) {
  service_bench(state, /*open_loop=*/false);
}

void stream_axis(benchmark::internal::Benchmark* b) {
  for (long s : {4L, 8L}) b->Arg(s);
}

}  // namespace

BENCHMARK(BM_ServiceSaturation_OpenLoop)->Apply(stream_axis)->UseRealTime();
BENCHMARK(BM_ServiceSaturation_ClosedLoop)->Apply(stream_axis)->UseRealTime();
