// Fig. 12 — "Performance of matrix multiplication with on-demand block
// copies with matrices of 8192x8192 single precision floats varying the
// number of processors."
//
// Series: SMPSs flat matmul (get/put + opaque flats, two tile variants) and
// the row-panel threaded GEMM baselines. Expected shape, as in the paper:
// the threaded libraries respond smoothly to thread count; SMPSs shows a
// staircase (a fixed block grid starves when the task count does not divide
// by the thread count) but is competitive at full machine width.
#include <benchmark/benchmark.h>

#include "apps/matmul.hpp"
#include "bench_common.hpp"
#include "common/timing.hpp"
#include "blas/threaded_blas.hpp"
#include "hyper/flat_matrix.hpp"

namespace {

using namespace smpss;

constexpr int kBaseN = 1536;
constexpr int kBlock = 256;

template <blas::Variant V>
void BM_SmpssMatmulFlat(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const int n = kBaseN * benchutil::bench_scale();
  FlatMatrix a(n), b(n);
  fill_random(a, 1);
  fill_random(b, 2);
  for (auto _ : state) {
    FlatMatrix c(n);
    Config cfg;
    cfg.num_threads = threads;
    Runtime rt(cfg);
    auto tt = apps::MatmulTasks::register_in(rt);
    auto t0 = now_ns();
    apps::matmul_smpss_flat(rt, tt, n, a.data(), b.data(), c.data(), kBlock,
                            blas::kernels(V));
    state.SetIterationTime(seconds_between(t0, now_ns()));
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::matmul_flops(n), benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["threads"] = threads;
}

template <blas::Variant V>
void BM_ThreadedGemm(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const int n = kBaseN * benchutil::bench_scale();
  FlatMatrix a(n), b(n);
  fill_random(a, 1);
  fill_random(b, 2);
  blas::ThreadedBlas tb(threads, V);
  for (auto _ : state) {
    FlatMatrix c(n);
    auto t0 = now_ns();
    tb.gemm_nn_acc_flat(n, a.data(), b.data(), c.data());
    state.SetIterationTime(seconds_between(t0, now_ns()));
  }
  state.counters["Gflops"] = benchmark::Counter(
      apps::matmul_flops(n), benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["threads"] = threads;
}

BENCHMARK(BM_SmpssMatmulFlat<blas::Variant::Tuned>)
    ->Name("Fig12/SMPSs+tuned_tiles")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_SmpssMatmulFlat<blas::Variant::Ref>)
    ->Name("Fig12/SMPSs+ref_tiles")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_ThreadedGemm<blas::Variant::Tuned>)
    ->Name("Fig12/Threaded_tuned")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_ThreadedGemm<blas::Variant::Ref>)
    ->Name("Fig12/Threaded_ref")
    ->Apply(benchutil::apply_thread_axis)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace
