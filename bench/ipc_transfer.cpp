// Transfer-layer benches for the multi-process backend: what the shared
// memory substrate costs (segment setup, message-ring round trips) and what
// an end-to-end pattern run pays for crossing process boundaries (fork +
// copy-in/copy-back + retire traffic) relative to the same graph run
// single-process.
//
//   * segment_setup     — shm_open/ftruncate/mmap/unlink round trip, the
//                         fixed cost every distributed run pays once.
//   * ring_round_trip   — two threads ping-ponging one message over a ring
//                         pair: the per-message latency floor of the
//                         submit/retire protocol.
//   * dist_stencil      — the same stencil graph at SMPSS_PROCS=1 (classic
//                         in-process runtime) vs 2 ranks: tasks/s including
//                         fork, shard split, staging copies, and join. The
//                         procs1 row doubles as the regression gate on the
//                         dispatch path itself.
//
// CI serializes this into BENCH_ipc.json; tools/bench_compare.py diffs it
// against the cached main baseline like every other bench.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "ipc/msg_ring.hpp"
#include "ipc/shm_segment.hpp"
#include "patterns/driver.hpp"

namespace {

using smpss::ipc::IpcMsg;
using smpss::ipc::MsgKind;
using smpss::ipc::MsgRing;
using smpss::ipc::ShmSegment;

// --- segment setup -----------------------------------------------------------

void BM_IpcSegmentSetup(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ShmSegment seg = ShmSegment::create(bytes);
    // Touch the first byte so lazily-faulted pages are not free.
    benchmark::DoNotOptimize(*seg.at<volatile char>(0));
  }
  state.counters["segments_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

// --- ring round trip ---------------------------------------------------------

void BM_IpcRingRoundTrip(benchmark::State& state) {
  // A ring pair in plain memory (the ring code is identical in a segment;
  // this isolates protocol cost from page-fault noise). The echo thread
  // plays the executor: recv on one ring, answer on the other.
  auto request = std::make_unique<MsgRing>();
  auto reply = std::make_unique<MsgRing>();
  std::atomic<bool> stop{false};
  // Yield in every spin: on a single hardware thread a yield-free ping-pong
  // burns a whole scheduler quantum per message, measuring the kernel's
  // timeslice instead of the ring.
  std::thread echo([&] {
    IpcMsg m;
    while (!stop.load(std::memory_order_acquire)) {
      if (!request->try_recv(m)) {
        std::this_thread::yield();
        continue;
      }
      m.kind = MsgKind::Retire;
      while (!reply->try_send(m)) std::this_thread::yield();
    }
  });
  IpcMsg m;
  m.kind = MsgKind::Submit;
  std::uint64_t trips = 0;
  for (auto _ : state) {
    m.a = trips;
    while (!request->try_send(m)) std::this_thread::yield();
    IpcMsg back;
    while (!reply->try_recv(back)) std::this_thread::yield();
    benchmark::DoNotOptimize(back.a);
    ++trips;
  }
  stop.store(true, std::memory_order_release);
  echo.join();
  state.counters["round_trips_per_s"] = benchmark::Counter(
      static_cast<double>(trips), benchmark::Counter::kIsRate);
}

// --- end-to-end distributed pattern run --------------------------------------

void dist_stencil_bench(benchmark::State& state, unsigned procs) {
  smpss::patterns::PatternSpec spec;
  spec.kind = smpss::patterns::PatternKind::Stencil1D;
  spec.width = 8;
  spec.steps = 32;
  spec.radix = 3;
  spec.seed = 0x1BC;
  smpss::patterns::RunOptions opt;
  opt.cfg.num_threads = 2;
  opt.cfg.procs = procs;
  opt.nfields = smpss::patterns::default_fields(spec);
  const smpss::patterns::PatternImage expect =
      smpss::patterns::run_oracle(spec, opt.nfields);
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    const smpss::patterns::RunResult r =
        smpss::patterns::run_pattern(spec, opt);
    if (r.image != expect) state.SkipWithError("image diverged from oracle");
    tasks += spec.total_tasks();
  }
  state.counters["tasks_per_s"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsRate);
}

void BM_IpcDistStencil_Procs1(benchmark::State& state) {
  dist_stencil_bench(state, 1);
}
void BM_IpcDistStencil_Procs2(benchmark::State& state) {
  dist_stencil_bench(state, 2);
}

}  // namespace

BENCHMARK(BM_IpcSegmentSetup)->Arg(1 << 16)->Arg(1 << 22)->UseRealTime();
BENCHMARK(BM_IpcRingRoundTrip)->UseRealTime();
BENCHMARK(BM_IpcDistStencil_Procs1)->UseRealTime();
BENCHMARK(BM_IpcDistStencil_Procs2)->UseRealTime();
