// Scheduler-policy comparison bench: the same dependency-pattern graphs the
// conformance harness proves correct, timed under the paper placement policy
// (SchedPolicyKind::Paper — Sec. III verbatim) and the aware policy
// (SchedPolicyKind::Aware — cost EWMA + critical-path promotion + locality
// routing + topology-near stealing).
//
// The families are chosen to exercise the three signals the aware policy
// adds:
//   * stencil_1d — neighbor dataflow; locality routing should keep a point's
//     column on the worker that produced its inputs.
//   * tree       — widening fan-out from a serial spine; critical-path
//     promotion should keep the spine hot instead of burying it behind
//     leaves.
//   * random_nearest — irregular mostly-local dependences; the policy's
//     placement has to win without a regular structure to pattern-match.
//
// Bodies carry a compute grain: with empty bodies the run measures pure
// enqueue/dequeue overhead, where a smarter policy can only lose. The paper
// rows double as the regression guard for the policy-interface refactor
// itself (tools/bench_compare.py gates BENCH_sched.json at 20%).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "patterns/driver.hpp"

namespace {

using namespace smpss;
using namespace smpss::patterns;

constexpr unsigned kThreads = 4;

PatternSpec sched_spec(PatternKind kind) {
  PatternSpec s;
  s.kind = kind;
  s.width = 32 * smpss::benchutil::bench_scale();
  s.steps = 24;
  s.radix = 4;
  s.period = 3;
  s.seed = 0x5C4ED;
  // Enough work per body that placement matters (and that execution, not
  // submission, is the bottleneck — the policies only differ once workers
  // are choosing between ready tasks).
  s.kernel = {KernelKind::Compute, 1024};
  return s;
}

void BM_SchedPolicy(benchmark::State& state, PatternKind kind,
                    SchedPolicyKind policy) {
  const PatternSpec spec = sched_spec(kind);
  RunOptions opt;
  opt.cfg.num_threads = kThreads;
  opt.cfg.task_window = 1u << 16;
  opt.cfg.sched_policy = policy;
  opt.mode = address_mode_ok(spec) ? LowerMode::Address : LowerMode::Region;
  std::uint64_t tasks = 0;
  std::uint64_t sink = 0;
  std::uint64_t steals = 0, hits = 0, misses = 0, promotions = 0;
  for (auto _ : state) {
    RunResult r = run_pattern(spec, opt);
    sink ^= image_checksum(r.image);
    tasks += spec.total_tasks();
    steals += r.stats.steals;
    hits += r.stats.locality_hits;
    misses += r.stats.locality_misses;
    promotions += r.stats.sched_promotions;
  }
  benchmark::DoNotOptimize(sink);
  state.counters["tasks_per_s"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.counters["steals_per_ktask"] =
      1000.0 * static_cast<double>(steals) / static_cast<double>(tasks);
  state.counters["promotions_per_ktask"] =
      1000.0 * static_cast<double>(promotions) / static_cast<double>(tasks);
  const double placed = static_cast<double>(hits + misses);
  state.counters["locality_hit_ratio"] =
      placed > 0 ? static_cast<double>(hits) / placed : 0.0;
}

}  // namespace

#define SCHED_ROW(name, kind)                                              \
  BENCHMARK_CAPTURE(BM_SchedPolicy, name##_paper, kind,                    \
                    smpss::SchedPolicyKind::Paper)                         \
      ->UseRealTime();                                                     \
  BENCHMARK_CAPTURE(BM_SchedPolicy, name##_aware, kind,                    \
                    smpss::SchedPolicyKind::Aware)                         \
      ->UseRealTime();

SCHED_ROW(stencil_1d, PatternKind::Stencil1D)
SCHED_ROW(tree, PatternKind::Tree)
SCHED_ROW(random_nearest, PatternKind::RandomNearest)

#undef SCHED_ROW
